package sched

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"medcc/internal/workflow"
)

// Optimal solves MED-CC exactly by parallel branch-and-bound over all type
// assignments. MED-CC is NP-complete (Theorem 1 of the paper), so this is
// only practical for the small instances of the paper's optimality study
// and its extended sizes (m <= ~14, n = 3); the MaxNodes guard keeps
// runaway instances from hanging.
//
// The search explores, per schedulable module, only the dominance-pruned
// (TE, CE) type options in TE-ascending order, so the first leaf of every
// subtree is its all-fastest completion — a strong incumbent. With more
// than one worker the top levels of the tree are expanded into independent
// subtree tasks; workers own their scratch (engine, timing, partial
// schedule), share only an atomic incumbent-makespan bound, and a final
// reduction in subtree order picks the unique optimum under the total
// order (lowest MED, then lowest cost, then first in DFS order), so the
// result is bit-identical to the sequential DFS regardless of worker count
// or interleaving.
type Optimal struct {
	// MaxNodes bounds the number of search nodes expanded; 0 means the
	// default of 50 million. Workers draw node quota from the shared
	// budget in chunks of 256, so expansion stops within one chunk per
	// worker of the limit. When the limit is hit the best incumbent found
	// so far (possibly non-optimal, but always budget-feasible) is
	// returned and Truncated is set.
	MaxNodes int64

	// Workers sets the branch-and-bound fan-out: 0 picks GOMAXPROCS and
	// falls back to a single worker when the pruned search tree is too
	// small to amortize goroutine startup; any positive value is used as
	// given (1 forces the sequential DFS). The schedule returned is the
	// same for every setting.
	Workers int

	// Truncated reports whether the last Schedule call hit MaxNodes and
	// returned a possibly suboptimal (but feasible) incumbent. Expanded
	// is the number of search nodes the last call expanded.
	Truncated bool
	Expanded  int64

	// eng is the coordinator's engine scratch: feasibility, the incumbent
	// seed's makespan, and the timing whose construction also pre-warms
	// the graph's shared topo/CSR caches before worker fan-out.
	eng engine

	// cg computes the Critical-Greedy schedule used as the incumbent
	// seed: it is near-optimal, so the search starts with a bound that
	// prunes most of the tree before the first leaf. The seed is just the
	// first candidate under the exact total order — any leaf with lower
	// MED, or equal MED at strictly lower cost, still replaces it — so
	// seeding changes no result, only how fast the proof closes.
	cg    *Greedy
	seedS workflow.Schedule

	// Per-position search tables, rebuilt each call into reused storage:
	// for schedulable position k, the dominance-pruned type options live
	// in optIdx[optOff[k]:optOff[k+1]], sorted by TE ascending (ties by
	// CE, then type index) — for surviving options TE ascending means CE
	// strictly descending. optTE/optCE mirror the option times and costs;
	// suffixMin[k] is the cheapest possible cost of positions k..end.
	optIdx       []int
	optTE, optCE []float64
	optOff       []int
	suffixMin    []float64

	sh    bbShared
	ws    []obWorker
	bestS workflow.Schedule // incumbent (returned schedule)
}

// Name implements Scheduler.
func (o *Optimal) Name() string { return "optimal" }

// WasTruncated implements TruncationReporter.
func (o *Optimal) WasTruncated() bool { return o.Truncated }

// bbShared is the per-solve state shared by the branch-and-bound workers.
// The plain fields are written by the coordinator before fan-out and only
// read by workers; cross-worker coordination goes through the atomics, and
// every task slot is written by exactly the worker that claimed the task.
type bbShared struct {
	mods   []int
	budget float64

	optIdx       []int
	optTE, optCE []float64
	optOff       []int
	suffixMin    []float64

	split    int // frontier depth: positions [0,split) are task prefixes
	ntasks   int
	expLimit int64

	// bestBits holds math.Float64bits of the best feasible makespan seen
	// by any worker; it only ever decreases, and every worker prunes
	// against it. nextTask hands out frontier tasks; expanded/stopped
	// implement the shared MaxNodes budget.
	bestBits atomic.Uint64
	nextTask atomic.Int64
	expanded atomic.Int64
	stopped  atomic.Bool

	// Per-task candidate slots: the best leaf of subtree t under the
	// (MED, cost, first-found) order, or +Inf when the subtree has no
	// feasible leaf. Read by the coordinator only after all workers join.
	taskMED, taskCost []float64
	taskSched         []workflow.Schedule
}

// obWorker is the per-goroutine scratch of one branch-and-bound worker: a
// private engine (incremental timing bound under the invariant "assigned
// prefix, fastest types for the unassigned suffix"), the partial schedule
// being explored, the applied frontier-prefix ranks, and the local node
// quota drawn from the shared expansion budget. Exactly one goroutine owns
// each instance for the duration of a solve.
//
// medcc:scratch
type obWorker struct {
	eng  engine
	cur  workflow.Schedule
	rank []int // option rank currently applied at positions [0,split)

	quota     int64
	med, cost float64           // local incumbent of the current task
	out       workflow.Schedule // aliases the claimed task's schedule slot
	err       error
}

// Schedule implements Scheduler. It returns a schedule with the minimum
// makespan among all schedules of cost <= budget; ties are broken toward
// lower cost, then toward the first such schedule in DFS order.
func (o *Optimal) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return o.ScheduleInto(nil, w, m, budget)
}

// defaultMaxNodes is the expansion budget when MaxNodes is zero.
const defaultMaxNodes = 50_000_000

// parallelMinTree is the smallest pruned-tree size (product of per-module
// option counts) worth fanning out when Workers is auto (0): below it the
// sequential DFS finishes faster than goroutine startup.
const parallelMinTree = 1024

// maxFrontierTasks caps the frontier split so task bookkeeping stays
// negligible next to subtree work.
const maxFrontierTasks = 4096

// ScheduleInto implements IntoScheduler: the search runs in reused scratch
// (per-worker engines, option tables, task slots), so repeated solves of
// the same instance are allocation-free in steady state on the sequential
// path and allocate only the goroutine fan-out when parallel.
//
// medcc:deterministic — the parallel frontier split merges results in
// task order, so the chosen optimum is schedule-order independent
func (o *Optimal) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	e := &o.eng
	e.bind(w, m)
	if err := e.feasible(budget); err != nil {
		return nil, err
	}
	lc := e.lc
	treeSize := o.buildBounds()

	// Incumbent seed: the Critical-Greedy schedule, budget-feasible by
	// construction and near-optimal in MED, so the search opens with a
	// bound that already prunes most of the tree. Its makespan comes from
	// the coordinator timing, which also pre-warms the graph's shared topo
	// order and CSR arrays so the worker goroutines only ever read them.
	if o.cg == nil {
		o.cg = CriticalGreedy()
	}
	seed, err := o.cg.ScheduleInto(o.seedS, w, m, budget)
	if err != nil {
		seed = lc // cannot happen after the feasibility check; stay safe
	} else {
		o.seedS = seed
	}
	if err := e.resetTiming(seed); err != nil {
		return nil, err
	}
	seedMED, seedCost := e.t.Makespan, m.Cost(seed)

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if treeSize < parallelMinTree {
			workers = 1
		}
	}

	sh := &o.sh
	sh.mods = e.mods
	sh.budget = budget
	sh.optIdx, sh.optTE, sh.optCE, sh.optOff = o.optIdx, o.optTE, o.optCE, o.optOff
	sh.suffixMin = o.suffixMin
	sh.expLimit = o.MaxNodes
	if sh.expLimit == 0 {
		sh.expLimit = defaultMaxNodes
	}
	sh.bestBits.Store(math.Float64bits(seedMED))
	sh.nextTask.Store(0)
	sh.expanded.Store(0)
	sh.stopped.Store(false)
	o.planFrontier(workers, len(lc))

	if cap(o.ws) < workers {
		o.ws = make([]obWorker, workers)
	}
	o.ws = o.ws[:workers]

	if workers == 1 {
		ws := &o.ws[0]
		ws.err = ws.solve(sh, w, m, lc)
	} else {
		// The goroutine closures capture only the plain run func and the
		// wait group; each worker reaches its own scratch through its
		// index, so no medcc:scratch value crosses the goroutine boundary.
		run := func(wk int) {
			ws := &o.ws[wk]
			ws.err = ws.solve(sh, w, m, lc)
		}
		var wg sync.WaitGroup
		for wk := 1; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				run(wk)
			}(wk)
		}
		run(0)
		wg.Wait()
	}
	for wk := range o.ws {
		if err := o.ws[wk].err; err != nil {
			return nil, err
		}
	}

	// Deterministic reduction: fold the seed and the per-task candidates
	// in frontier order under the exact total order (lowest MED, then
	// lowest cost, then first in DFS order). Frontier order IS sequential
	// DFS order, so the winner is the schedule the one-worker DFS
	// returns, independent of how tasks were interleaved.
	bestMED, bestCost, bestIdx := seedMED, seedCost, -1
	for t := 0; t < sh.ntasks; t++ {
		med := sh.taskMED[t]
		if med > bestMED {
			continue
		}
		if med < bestMED || sh.taskCost[t] < bestCost {
			bestMED, bestCost, bestIdx = med, sh.taskCost[t], t
		}
	}

	if len(dst) == len(lc) {
		o.bestS = dst
	} else if len(o.bestS) != len(lc) {
		o.bestS = make(workflow.Schedule, len(lc))
	}
	if bestIdx >= 0 {
		copy(o.bestS, sh.taskSched[bestIdx])
	} else {
		copy(o.bestS, seed)
	}
	o.Truncated = sh.stopped.Load()
	o.Expanded = sh.expanded.Load()
	return o.bestS, nil
}

// buildBounds fills the per-position option tables from the matrices and
// returns the pruned search-tree size (product of option counts, saturated
// at parallelMinTree*maxFrontierTasks). For each schedulable module the
// types are sorted by (TE, CE, index) ascending and a sweep keeps only the
// Pareto frontier — a type survives iff no other type is at least as fast
// and at least as cheap (exact ties keep the lowest index). A dropped type
// can never improve the optimum: replacing it with its dominator never
// raises the makespan or the cost, so the (MED, cost) optimum over the
// pruned tree equals the optimum over the full tree.
func (o *Optimal) buildBounds() int64 {
	e := &o.eng
	m := e.m
	mods := e.mods
	n := len(m.Catalog)
	np := len(mods)
	if cap(o.optOff) < np+1 {
		o.optOff = make([]int, np+1)
		o.suffixMin = make([]float64, np+1)
	}
	o.optOff = o.optOff[:np+1]
	o.suffixMin = o.suffixMin[:np+1]
	if cap(o.optIdx) < np*n {
		o.optIdx = make([]int, np*n)
		o.optTE = make([]float64, np*n)
		o.optCE = make([]float64, np*n)
	}
	o.optIdx = o.optIdx[:np*n]
	o.optTE = o.optTE[:np*n]
	o.optCE = o.optCE[:np*n]

	const sizeCap = int64(parallelMinTree) * maxFrontierTasks
	tree := int64(1)
	off := 0
	for k, i := range mods {
		o.optOff[k] = off
		te, ce := m.TE[i], m.CE[i]
		// Insertion sort of the type indices by (TE, CE, index): n is a
		// single-digit catalog size, and in-place insertion keeps the
		// steady-state path allocation-free.
		idx := o.optIdx[off : off : off+n]
		for j := 0; j < n; j++ {
			p := len(idx)
			idx = idx[:p+1]
			for p > 0 {
				q := idx[p-1]
				if te[q] < te[j] || (te[q] <= te[j] && ce[q] <= ce[j]) {
					break
				}
				idx[p] = q
				p--
			}
			idx[p] = j
		}
		// Pareto sweep: with TE ascending, a type survives iff its CE is
		// strictly below every faster type's CE.
		w := off
		bestCE := math.Inf(1)
		for _, j := range idx {
			if ce[j] < bestCE {
				o.optIdx[w] = j
				o.optTE[w] = te[j]
				o.optCE[w] = ce[j]
				bestCE = ce[j]
				w++
			}
		}
		if cnt := int64(w - off); tree < sizeCap {
			tree *= cnt
		}
		off = w
	}
	o.optOff[np] = off

	// suffixMin[k] = cheapest completion cost of positions k..end; with CE
	// strictly descending over each option run, the minimum is the last
	// surviving option's cost.
	o.suffixMin[np] = 0
	for k := np - 1; k >= 0; k-- {
		o.suffixMin[k] = o.suffixMin[k+1] + o.optCE[o.optOff[k+1]-1]
	}
	if tree > sizeCap {
		tree = sizeCap
	}
	return tree
}

// planFrontier picks the frontier depth: enough top levels that every
// worker sees several independent subtrees (work stealing via the shared
// task counter balances uneven pruning), capped so task bookkeeping stays
// cheap. One worker means no split — a single task spanning the whole
// tree, i.e. the plain sequential DFS.
func (o *Optimal) planFrontier(workers, nm int) {
	sh := &o.sh
	sh.split, sh.ntasks = 0, 1
	if workers > 1 {
		want := 8 * workers
		for sh.split < len(sh.mods) && sh.ntasks < want {
			next := sh.ntasks * (sh.optOff[sh.split+1] - sh.optOff[sh.split])
			if next > maxFrontierTasks {
				break
			}
			sh.ntasks = next
			sh.split++
		}
	}
	if cap(sh.taskMED) < sh.ntasks {
		sh.taskMED = make([]float64, sh.ntasks)
		sh.taskCost = make([]float64, sh.ntasks)
	}
	sh.taskMED = sh.taskMED[:sh.ntasks]
	sh.taskCost = sh.taskCost[:sh.ntasks]
	for t := range sh.taskMED {
		sh.taskMED[t] = math.Inf(1)
		sh.taskCost[t] = math.Inf(1)
	}
	if cap(sh.taskSched) < sh.ntasks {
		next := make([]workflow.Schedule, sh.ntasks)
		copy(next, sh.taskSched[:cap(sh.taskSched)])
		sh.taskSched = next
	}
	sh.taskSched = sh.taskSched[:sh.ntasks]
	for t := range sh.taskSched {
		if len(sh.taskSched[t]) != nm {
			sh.taskSched[t] = make(workflow.Schedule, nm)
		}
	}
}

// solve is one worker's share of a solve: bind the private engine, reset
// the timing to the all-fastest completion of the least-cost base, then
// claim frontier tasks off the shared counter until none remain.
func (ws *obWorker) solve(sh *bbShared, w *workflow.Workflow, m *workflow.Matrices, lc workflow.Schedule) error {
	e := &ws.eng
	e.bind(w, m)
	if len(ws.cur) != len(lc) {
		ws.cur = make(workflow.Schedule, len(lc))
	}
	copy(ws.cur, lc)
	for k, i := range sh.mods {
		ws.cur[i] = sh.optIdx[sh.optOff[k]]
	}
	if err := e.resetTiming(ws.cur); err != nil {
		return err
	}
	if cap(ws.rank) < sh.split {
		ws.rank = make([]int, sh.split)
	}
	ws.rank = ws.rank[:sh.split]
	for k := range ws.rank {
		ws.rank[k] = 0
	}
	for {
		t := sh.nextTask.Add(1) - 1
		if t >= int64(sh.ntasks) {
			break
		}
		ws.runTask(sh, int(t))
	}
	// Hand unspent node quota back so Expanded reports actual expansions.
	sh.expanded.Add(-ws.quota)
	ws.quota = 0
	return nil
}

// runTask applies frontier task t's prefix (diffing against the ranks this
// worker already has applied, so consecutive tasks re-relax only changed
// positions), prunes it against the budget and the shared incumbent, and
// runs the subtree DFS below it.
func (ws *obWorker) runTask(sh *bbShared, t int) {
	e := &ws.eng
	x := t
	for k := sh.split - 1; k >= 0; k-- {
		lo := sh.optOff[k]
		radix := sh.optOff[k+1] - lo
		r := x % radix
		x /= radix
		if ws.rank[k] != r {
			i := sh.mods[k]
			ws.cur[i] = sh.optIdx[lo+r]
			e.t.UpdateNode(i, sh.optTE[lo+r])
			ws.rank[k] = r
		}
	}
	// Budget bound over the prefix, checked level by level exactly like
	// the DFS branch loop would: the first level that cannot finish within
	// budget prunes this subtree.
	cost := 0.0
	for k := 0; k < sh.split; k++ {
		cost += sh.optCE[sh.optOff[k]+ws.rank[k]]
		if cost+sh.suffixMin[k+1] > sh.budget+costEps {
			return
		}
	}
	ws.med, ws.cost = math.Inf(1), math.Inf(1)
	ws.out = sh.taskSched[t]
	ws.dfs(sh, sh.split, cost)
	sh.taskMED[t], sh.taskCost[t] = ws.med, ws.cost
}

// dfs explores assignments for positions depth.. with the partial cost of
// the assigned prefix, recording the subtree's best leaf under the exact
// (MED, cost, first-found) order. The timing is maintained under the
// invariant "assigned prefix of cur, fastest types for the unassigned
// suffix", so t.Makespan is always a lower bound — and at a leaf the exact
// makespan — without a full DAG pass per node. Bounds are exact (strict
// float comparisons): a node is cut only when every leaf below it provably
// loses, so the surviving optimum is independent of exploration order and
// of the shared bound's arrival timing.
//
// medcc:allocfree
func (ws *obWorker) dfs(sh *bbShared, depth int, cost float64) {
	if !ws.takeNode(sh) {
		return
	}
	e := &ws.eng
	bnd := ws.med
	if g := math.Float64frombits(sh.bestBits.Load()); g < bnd {
		bnd = g
	}
	mk := e.t.Makespan
	if mk > bnd {
		return // even the all-fastest completion loses to the incumbent
	}
	if depth == len(sh.mods) {
		// The suffix is empty: mk is exactly cur's makespan, and mk <=
		// bnd <= ws.med here, so the leaf wins on lower MED or on equal
		// MED at strictly lower cost.
		if mk < ws.med || cost < ws.cost {
			ws.med, ws.cost = mk, cost
			copy(ws.out, ws.cur)
			publishBest(&sh.bestBits, mk)
		}
		return
	}
	i := sh.mods[depth]
	// Critical path through i: EST[i] cannot drop and the i-to-exit tail
	// (Tail[i], which excludes i's own duration) cannot shrink when the
	// suffix slows down, so est+TE+tail lower-bounds every leaf below a
	// branch; with options TE-ascending, the first hopeless branch ends
	// the level.
	est := e.t.EST[i]
	tail := e.t.Tail[i]
	lo, hi := sh.optOff[depth], sh.optOff[depth+1]
	rem := sh.suffixMin[depth+1]
	if depth+1 == len(sh.mods) {
		// Last position: every child is a leaf, so evaluate the options
		// with non-mutating trial probes instead of UpdateNode+recursion.
		// Surviving options have strictly ascending TE, so the makespan is
		// non-decreasing and the cost strictly decreasing across r: the
		// node's best leaf under the (MED, cost) order is the cheapest
		// option on the minimum-makespan plateau — exactly what the
		// recursive leaf rule would keep.
		bestR, bestMk := -1, 0.0
		for r := lo; r < hi; r++ {
			if cost+sh.optCE[r]+rem > sh.budget+costEps {
				continue // over budget; later options are strictly cheaper
			}
			if est+sh.optTE[r]+tail > bnd {
				break
			}
			mk2 := e.t.WhatIfMakespan(i, sh.optTE[r])
			if mk2 > bnd || (bestR >= 0 && mk2 > bestMk) {
				break // makespan only grows from here
			}
			bestR, bestMk = r, mk2
		}
		if bestR >= 0 {
			// bestMk <= bnd <= ws.med here, so the candidate wins on lower
			// MED or on equal MED at strictly lower cost.
			c2 := cost + sh.optCE[bestR]
			if bestMk < ws.med || c2 < ws.cost {
				ws.med, ws.cost = bestMk, c2
				copy(ws.out, ws.cur)
				ws.out[i] = sh.optIdx[bestR]
				publishBest(&sh.bestBits, bestMk)
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		c2 := cost + sh.optCE[r]
		if c2+rem > sh.budget+costEps {
			continue // over budget; later options are strictly cheaper
		}
		if est+sh.optTE[r]+tail > bnd {
			break
		}
		ws.cur[i] = sh.optIdx[r]
		e.t.UpdateNode(i, sh.optTE[r])
		ws.dfs(sh, depth+1, c2)
		if ws.med < bnd {
			bnd = ws.med
		}
	}
	// Restore the fastest type so the invariant holds for the parent's
	// remaining siblings.
	e.t.UpdateNode(i, sh.optTE[lo])
}

// takeNode consumes one unit of the shared node-expansion budget, drawing
// quota in chunks to keep the shared counter off the per-node hot path.
//
// medcc:allocfree
func (ws *obWorker) takeNode(sh *bbShared) bool {
	if ws.quota > 0 {
		ws.quota--
		return true
	}
	if sh.stopped.Load() {
		return false
	}
	const chunk = 256
	if sh.expanded.Add(chunk) > sh.expLimit {
		sh.expanded.Add(-chunk)
		sh.stopped.Store(true)
		return false
	}
	ws.quota = chunk - 1
	return true
}

// publishBest lowers the shared incumbent-makespan bits to med when it
// improves; the value only ever decreases, so a lost CAS race just retries
// against a bound at least as strong.
//
// medcc:allocfree
func publishBest(bits *atomic.Uint64, med float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= med {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(med)) {
			return
		}
	}
}

func init() {
	Register("optimal", func() Scheduler { return &Optimal{} })
}
