package sched

import (
	"sort"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// LOSS is the downgrade-direction counterpart of GAIN from Sakellariou et
// al.: start from the makespan-optimal schedule and repeatedly downgrade
// the assignment with the smallest LossWeight — time increase per unit of
// cost saved — until the total cost fits the budget.
//
// In the MED-CC model every module runs on its own (unbounded) VM
// instance, so the makespan-optimal starting schedule produced by HEFT
// degenerates to mapping each module to its fastest type; Fastest() is
// therefore the exact HEFT-equivalent starting point here.
//
// Variant 1 measures the task-local execution time increase; variant 2
// measures the whole-DAG makespan increase of a tentative downgrade;
// variant 3 mirrors GAIN1's static discipline — all LossWeights are
// computed once against the fastest schedule, downgrades applied in one
// ascending-weight pass (each task downgraded at most once) and topped up
// with per-task least-cost drops if the budget still does not hold.
type LOSS struct {
	Variant int // 1, 2 or 3

	eng engine
}

// Name implements Scheduler.
func (l *LOSS) Name() string {
	switch l.Variant {
	case 2:
		return "loss2"
	case 3:
		return "loss3"
	}
	return "loss1"
}

// Schedule implements Scheduler.
func (l *LOSS) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return l.ScheduleInto(nil, w, m, budget)
}

// ScheduleInto implements IntoScheduler. LOSS2's whole-DAG LossWeights are
// probed with WhatIfMakespan against a single incremental timing instead of
// one trial Timing per candidate.
//
// medcc:allocfree — holds for the iterative LOSS1/LOSS2 paths; LOSS3's
// staticPass is per-call setup and opts out via medcc:coldpath.
// medcc:deterministic — replayed bit-identical by the differential tests
func (l *LOSS) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	e := &l.eng
	e.bind(w, m)
	if err := e.feasible(budget); err != nil {
		return nil, err
	}
	if l.Variant == 3 {
		return l.staticPass(dst, w, m, budget)
	}
	s := m.FastestInto(w, dst)
	ctmp := m.Cost(s)
	if l.Variant != 2 {
		// LOSS1's task-local LossWeights are independent of both the
		// leftover budget and the timing, so the downgrade loop runs off
		// the candidate heap: one option scan per module up front, then
		// one re-scan of the single downgraded module per accept.
		e.ct.start(e, candLoss)
		e.ct.rebuild(s, 0, actAll)
		for ctmp > budget+costEps {
			i, j, save, ok := e.ct.popBest(s, 0, actAll)
			if !ok {
				// No downgrade available yet over budget: impossible,
				// since Fastest can always be downgraded toward
				// LeastCost whose cost is <= budget (checked above).
				break
			}
			s[i] = j
			ctmp -= save
			e.ct.evalModule(i, s, 0)
			if e.ct.bj[i] >= 0 {
				e.ct.push(i)
			}
		}
		return s, nil
	}
	if err := e.resetTiming(s); err != nil {
		return nil, err
	}
	for ctmp > budget+costEps {
		bi, bj := -1, -1
		var bestW, bestDC float64
		for _, i := range e.mods {
			for _, j := range e.opts(i) {
				if j == s[i] {
					continue
				}
				dc := m.CE[i][s[i]] - m.CE[i][j] // cost saved
				if dc <= costEps {
					continue
				}
				// Time lost: the whole-DAG makespan increase of the
				// tentative downgrade.
				dt := e.t.WhatIfMakespan(i, m.TE[i][j]) - e.t.Makespan
				if dt < 0 {
					dt = 0 // cheaper and no slower: ideal downgrade
				}
				wgt := dt / dc
				if bi == -1 || wgt < bestW-dag.Eps ||
					(wgt <= bestW+dag.Eps && dc > bestDC+costEps) {
					bi, bj, bestW, bestDC = i, j, wgt, dc
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		ctmp -= bestDC
		e.updateNode(bi, bj)
	}
	return s, nil
}

// staticPass implements LOSS3: LossWeights precomputed against the
// fastest schedule, sorted ascending (cheapest time lost per unit saved
// first), one downgrade per task; if the budget still does not hold after
// the pass, remaining tasks drop to their least-cost types in weight
// order, which always lands at or below Cmin <= budget.
//
// medcc:coldpath — the precomputed downgrade list and its sort allocate by
// design; LOSS3 is a baseline, not a steady-state path.
func (l *LOSS) staticPass(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	e := &l.eng
	s := m.FastestInto(w, dst)
	ctmp := m.Cost(s)
	type downgrade struct {
		i, j   int
		weight float64
		save   float64
	}
	var downs []downgrade
	for _, i := range e.mods {
		for _, j := range e.opts(i) {
			if j == s[i] {
				continue
			}
			save := m.CE[i][s[i]] - m.CE[i][j]
			if save <= costEps {
				continue
			}
			dt := m.TE[i][j] - m.TE[i][s[i]]
			if dt < 0 {
				dt = 0
			}
			downs = append(downs, downgrade{i, j, dt / save, save})
		}
	}
	sort.SliceStable(downs, func(a, b int) bool {
		// medcc:lint-ignore floateq — comparator needs a strict weak order; exact rank split, then save tie-break.
		if downs[a].weight != downs[b].weight {
			return downs[a].weight < downs[b].weight
		}
		return downs[a].save > downs[b].save
	})
	moved := e.resetMoved()
	for _, d := range downs {
		if ctmp <= budget+costEps {
			break
		}
		if moved[d.i] {
			continue
		}
		ctmp -= m.CE[d.i][s[d.i]] - m.CE[d.i][d.j]
		s[d.i] = d.j
		moved[d.i] = true
	}
	// Top-up: if one downgrade per task was not enough, fall through to
	// least-cost types in the same weight order.
	for _, d := range downs {
		if ctmp <= budget+costEps {
			break
		}
		save := m.CE[d.i][s[d.i]] - m.CE[d.i][d.j]
		if save <= costEps {
			continue
		}
		ctmp -= save
		s[d.i] = d.j
	}
	return s, nil
}

func init() {
	Register("loss1", func() Scheduler { return &LOSS{Variant: 1} })
	Register("loss2", func() Scheduler { return &LOSS{Variant: 2} })
	Register("loss3", func() Scheduler { return &LOSS{Variant: 3} })
}
