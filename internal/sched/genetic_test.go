package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
)

func TestGeneticInfeasible(t *testing.T) {
	w, m := paperSetup(t)
	if _, err := (&Genetic{Seed: 1}).Schedule(w, m, 40); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestGeneticRespectsBudgetAndBeatsLeastCost(t *testing.T) {
	w, m := paperSetup(t)
	lcEv, _ := w.Evaluate(m, m.LeastCost(w), nil)
	for _, b := range []float64{50, 57, 64} {
		res, err := Run(&Genetic{Seed: 1}, w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > b+1e-9 {
			t.Fatalf("B=%v: cost %v over budget", b, res.Cost)
		}
		if res.MED > lcEv.Makespan+1e-9 {
			t.Fatalf("B=%v: GA worse than least-cost", b)
		}
	}
}

func TestGeneticMatchesOptimalOnPaperExample(t *testing.T) {
	w, m := paperSetup(t)
	for _, b := range []float64{52, 57, 64} {
		gaRes, err := Run(&Genetic{Seed: 1, Generations: 80}, w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Run(&Optimal{}, w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if gaRes.MED > opt.MED+1e-9 {
			// Not guaranteed, but on a 6-module instance with 80
			// generations the GA should land on the optimum.
			t.Fatalf("B=%v: GA %v vs optimal %v", b, gaRes.MED, opt.MED)
		}
	}
}

func TestGeneticDeterministicPerSeed(t *testing.T) {
	w, m := paperSetup(t)
	a, err := (&Genetic{Seed: 7}).Schedule(w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Genetic{Seed: 7}).Schedule(w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different schedules")
	}
}

func TestGeneticOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 4; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 10, E: 17, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := (cmin + cmax) / 2
		ga, err := Run(&Genetic{Seed: int64(trial)}, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := Run(CriticalGreedy(), wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if ga.Cost > b+1e-9 {
			t.Fatalf("trial %d: GA over budget", trial)
		}
		// GA is seeded with CG, so it can only match or improve it.
		if ga.MED > cg.MED+1e-9 {
			t.Fatalf("trial %d: GA %v worse than its own seed CG %v", trial, ga.MED, cg.MED)
		}
		if math.IsNaN(ga.MED) {
			t.Fatal("NaN MED")
		}
	}
}
