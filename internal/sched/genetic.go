package sched

import (
	"math/rand"
	"sort"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// Genetic is a budget-constrained genetic algorithm in the style of Yu's
// utility-grid scheduler (the paper's reference [13]): chromosomes are
// module-to-type mappings, infeasible individuals are repaired by
// downgrading until the budget holds, and fitness is the analytic MED.
// It is the population-based baseline in the registry — slower than the
// greedy family but able to escape their local minima on small and medium
// instances.
type Genetic struct {
	// Seed makes runs reproducible; the registry default is 1.
	Seed int64
	// Population and Generations bound the search; zero values select
	// the defaults (40, 60).
	Population  int
	Generations int
	// MutationRate is the per-gene mutation probability; zero selects
	// the default 0.05.
	MutationRate float64
}

// Name implements Scheduler.
func (ga *Genetic) Name() string { return "genetic" }

// Schedule implements Scheduler.
func (ga *Genetic) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	lc, _, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	pop := ga.Population
	if pop <= 0 {
		pop = 40
	}
	gens := ga.Generations
	if gens <= 0 {
		gens = 60
	}
	mut := ga.MutationRate
	if mut <= 0 {
		mut = 0.05
	}
	rng := rand.New(rand.NewSource(ga.Seed))
	mods := w.Schedulable()
	n := len(m.Catalog)
	nm := w.NumModules()

	// repair downgrades random over-budget genes toward their cheapest
	// type until the schedule is feasible. Because the least-cost type
	// per module exists and the loop only moves genes to it, this
	// terminates within len(mods) changes.
	cheapest := make(map[int]int, len(mods))
	for _, i := range mods {
		best := 0
		for j := 1; j < n; j++ {
			if m.CE[i][j] < m.CE[i][best] {
				best = j
			}
		}
		cheapest[i] = best
	}
	perm := make([]int, len(mods))
	repair := func(s workflow.Schedule) {
		cost := m.Cost(s)
		if cost <= budget+costEps {
			return
		}
		permInto(rng, perm)
		for _, k := range perm {
			i := mods[k]
			if s[i] == cheapest[i] {
				continue
			}
			cost -= m.CE[i][s[i]] - m.CE[i][cheapest[i]]
			s[i] = cheapest[i]
			if cost <= budget+costEps {
				return
			}
		}
	}

	type indiv struct {
		s   workflow.Schedule
		med float64
	}
	var (
		times  []float64
		timing *dag.Timing
	)
	fitness := func(s workflow.Schedule) float64 {
		times = m.TimesInto(s, times)
		if timing == nil {
			t, err := dag.NewTiming(w.Graph(), times, nil)
			if err != nil {
				return 1e300 // structurally impossible: already validated
			}
			timing = t
		} else if err := timing.Update(times); err != nil {
			return 1e300
		}
		return timing.Makespan
	}

	// Two generation-sized slabs of schedule storage, ping-ponged between
	// the current population and the one under construction: individuals
	// are never mutated after insertion, so carrying elites forward by
	// content copy is equivalent to carrying their backing arrays.
	var slabs [2][]workflow.Schedule
	for b := range slabs {
		slabs[b] = make([]workflow.Schedule, pop)
		backing := make([]int, pop*nm)
		for k := range slabs[b] {
			slabs[b][k] = backing[k*nm : (k+1)*nm]
		}
	}
	act := 0

	// Seed the population with the least-cost schedule, greedy
	// solutions, and random feasible individuals.
	population := make([]indiv, 0, pop)
	add := func(src workflow.Schedule) {
		s := slabs[act][len(population)]
		copy(s, src)
		repair(s)
		population = append(population, indiv{s: s, med: fitness(s)})
	}
	add(lc)
	if cg, err := CriticalGreedy().Schedule(w, m, budget); err == nil {
		add(cg)
	}
	seed := lc.Clone()
	for len(population) < pop {
		copy(seed, lc)
		for _, i := range mods {
			seed[i] = rng.Intn(n)
		}
		add(seed)
	}

	tournament := func() indiv {
		a := population[rng.Intn(len(population))]
		b := population[rng.Intn(len(population))]
		if a.med <= b.med {
			return a
		}
		return b
	}

	best := population[0]
	for _, ind := range population {
		if ind.med < best.med {
			best = ind
		}
	}
	bestS := best.s.Clone() // survives slab recycling
	next := make([]indiv, 0, pop)
	for g := 0; g < gens; g++ {
		act ^= 1
		dst := slabs[act]
		next = next[:0]
		// Elitism: carry the two best forward.
		sort.SliceStable(population, func(a, b int) bool { return population[a].med < population[b].med })
		for _, elite := range population[:2] {
			s := dst[len(next)]
			copy(s, elite.s)
			next = append(next, indiv{s: s, med: elite.med})
		}
		for len(next) < pop {
			p1, p2 := tournament(), tournament()
			child := dst[len(next)]
			copy(child, p1.s)
			for _, i := range mods {
				if rng.Intn(2) == 0 {
					child[i] = p2.s[i]
				}
				if rng.Float64() < mut {
					child[i] = rng.Intn(n)
				}
			}
			repair(child)
			next = append(next, indiv{s: child, med: fitness(child)})
		}
		population, next = next, population
		for _, ind := range population {
			if ind.med < best.med {
				best = ind
				copy(bestS, ind.s)
			}
		}
	}
	return bestS, nil
}

func init() {
	Register("genetic", func() Scheduler { return &Genetic{Seed: 1} })
}
