package sched

import (
	"fmt"
	"math/rand"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// IntoScheduler is implemented by schedulers that can write their result
// into a caller-provided schedule, so repeated scheduling of the same
// instance runs without per-call result allocations.
type IntoScheduler interface {
	Scheduler
	// ScheduleInto behaves like Schedule but reuses dst for the result
	// when it has the right length (allocating otherwise).
	ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error)
}

// Sweeper is implemented by schedulers that support warm-started budget
// sweeps: solving the same instance at several ascending budgets, each
// level resuming from the previous level's schedule and surviving
// candidate state instead of re-solving from scratch. The sweep campaign
// runners (Table II, Fig. 6, Figs. 9-11) drive schedulers through this
// interface.
type Sweeper interface {
	IntoScheduler
	// SweepInto schedules the instance at each budgets[k] (which must be
	// ascending), writing the level-k schedule into dst[k]; dst is grown
	// to len(budgets) when shorter and existing entries of the right
	// length are reused.
	SweepInto(dst []workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error)
}

// SweepSchedules runs sch at every budget of an ascending sweep, using the
// warm-started SweepInto when sch implements Sweeper and falling back to
// independent cold solves per level otherwise.
func SweepSchedules(sch IntoScheduler, dst []workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error) {
	if sw, ok := sch.(Sweeper); ok {
		return sw.SweepInto(dst, w, m, budgets)
	}
	if err := checkAscending(budgets); err != nil {
		return nil, err
	}
	dst = growSweepDst(dst, len(budgets))
	for k, b := range budgets {
		s, err := sch.ScheduleInto(dst[k], w, m, b)
		if err != nil {
			return nil, err
		}
		dst[k] = s
	}
	return dst, nil
}

// checkAscending validates a sweep's budget levels.
func checkAscending(budgets []float64) error {
	for k := 1; k < len(budgets); k++ {
		if budgets[k] < budgets[k-1] {
			return fmt.Errorf("sweep budgets not ascending: budgets[%d]=%.6g < budgets[%d]=%.6g",
				k, budgets[k], k-1, budgets[k-1])
		}
	}
	return nil
}

// growSweepDst resizes a sweep destination to n levels, keeping existing
// per-level schedules for reuse.
func growSweepDst(dst []workflow.Schedule, n int) []workflow.Schedule {
	if cap(dst) < n {
		nd := make([]workflow.Schedule, n)
		copy(nd, dst)
		return nd
	}
	return dst[:n]
}

// copySchedule copies src into dst, reusing dst when it has the right
// length.
func copySchedule(dst, src workflow.Schedule) workflow.Schedule {
	if len(dst) != len(src) {
		dst = make(workflow.Schedule, len(src))
	}
	copy(dst, src)
	return dst
}

// engine is the scratch state a scheduler keeps between calls: the
// incremental timing, the execution-time buffer it is bound to, the
// schedulable-module list, and candidate/visited scratch. Binding is keyed
// on the (workflow, matrices) pair, so a scheduler instance reused across
// calls on the same instance reaches a steady state with zero per-iteration
// heap allocations.
//
// A scheduler holding an engine is NOT safe for concurrent use; create one
// instance per goroutine (the registry constructors always return fresh
// instances).
//
// medcc:scratch
type engine struct {
	w *workflow.Workflow
	m *workflow.Matrices
	// wver/mver pin the graph version and matrices epoch the scratch was
	// built against: pooled builders rebuild workflows and matrices in
	// place behind unchanged pointers, so pointer equality alone would
	// let stale timings and module lists leak across instances.
	wver, mver uint64

	t        *dag.Timing
	times    []float64
	mods     []int
	cand     []int
	allTypes []int
	moved    []bool
	lc       workflow.Schedule

	// ct is the per-module best-upgrade cache and lazy-deletion heap the
	// greedy reschedulers drain instead of rescanning every (module, type)
	// pair per iteration; trk is the reusable changed-set buffer for
	// dag.Timing.UpdateNodeTracked.
	ct  candTab
	trk []int32

	// Fallback structure-of-arrays option table, built locally when the
	// bound matrices were assembled by hand without BuildOptions (localSoA
	// true); otherwise optTable serves the matrices' shared table.
	localSoA     bool
	soaOff       []int32
	soaTyp       []int32
	soaTE, soaCE []float64
}

// bind points the engine at a (workflow, matrices) pair, reusing all
// scratch when the pair is unchanged since the last call. When the pair
// changed but the module and catalog counts did not — pooled builders
// rebuilding instances in place — the module list, timing buffer,
// candidate scratch, visited flags, and type list are all refilled in
// place rather than reallocated.
//
// medcc:coldpath — first binds (and size growth) allocate the scratch;
// steady-state calls take the early return or refill existing capacity.
func (e *engine) bind(w *workflow.Workflow, m *workflow.Matrices) {
	if e.w == w && e.m == m && len(e.times) == w.NumModules() &&
		e.wver == w.Graph().Version() && e.mver == m.Epoch() {
		return
	}
	e.w, e.m = w, m
	e.wver, e.mver = w.Graph().Version(), m.Epoch()
	e.t = nil
	e.mods = w.SchedulableInto(e.mods)
	nm := w.NumModules()
	if cap(e.times) < nm {
		e.times = make([]float64, nm)
	} else {
		e.times = e.times[:nm]
	}
	if cap(e.moved) < nm {
		e.moved = make([]bool, nm)
	} else {
		e.moved = e.moved[:nm]
	}
	if cap(e.cand) < len(e.mods) {
		e.cand = make([]int, 0, len(e.mods))
	} else {
		e.cand = e.cand[:0]
	}
	n := len(m.Catalog)
	if cap(e.allTypes) < n {
		e.allTypes = make([]int, n)
	} else {
		e.allTypes = e.allTypes[:n]
	}
	for j := range e.allTypes {
		e.allTypes[j] = j
	}
	e.bindSoA()
}

// bindSoA installs the option-table view: the matrices' shared table when
// BuildOptions ran, else a locally built equivalent over e.opts (same
// layout: per module, rows sorted by TE ascending with ties by type index
// ascending).
func (e *engine) bindSoA() {
	e.localSoA = !e.m.HasOptionTable()
	if !e.localSoA {
		return
	}
	e.buildLocalSoA()
}

// buildLocalSoA assembles the fallback table for hand-built matrices.
//
// medcc:coldpath — runs once per (re)bind, only for matrices without
// BuildOptions; the capacity-reusing appends still avoid steady-state
// allocation for pooled rebinding.
func (e *engine) buildLocalSoA() {
	nm := e.w.NumModules()
	if cap(e.soaOff) < nm+1 {
		e.soaOff = make([]int32, nm+1)
	} else {
		e.soaOff = e.soaOff[:nm+1]
	}
	e.soaTyp = e.soaTyp[:0]
	e.soaTE = e.soaTE[:0]
	e.soaCE = e.soaCE[:0]
	for i := 0; i < nm; i++ {
		e.soaOff[i] = int32(len(e.soaTyp))
		base := int(e.soaOff[i])
		for _, j := range e.opts(i) {
			te, ce := e.m.TE[i][j], e.m.CE[i][j]
			k := len(e.soaTyp)
			e.soaTyp = append(e.soaTyp, 0)
			e.soaTE = append(e.soaTE, 0)
			e.soaCE = append(e.soaCE, 0)
			for k > base && e.soaTE[k-1] > te {
				e.soaTyp[k] = e.soaTyp[k-1]
				e.soaTE[k] = e.soaTE[k-1]
				e.soaCE[k] = e.soaCE[k-1]
				k--
			}
			e.soaTyp[k] = int32(j)
			e.soaTE[k] = te
			e.soaCE[k] = ce
		}
	}
	e.soaOff[nm] = int32(len(e.soaTyp))
}

// optTable returns module i's options as the flat (type, TE, CE) view in
// ascending-TE order, from the matrices' shared table or the local
// fallback.
func (e *engine) optTable(i int) (typ []int32, te, ce []float64) {
	if !e.localSoA {
		return e.m.OptionTable(i)
	}
	lo, hi := e.soaOff[i], e.soaOff[i+1]
	return e.soaTyp[lo:hi], e.soaTE[lo:hi], e.soaCE[lo:hi]
}

// resetTiming refreshes the incremental timing to schedule s, constructing
// it on first use. Afterwards e.t aliases e.times: UpdateNode keeps both in
// sync, and callers must never write e.times directly before updating.
func (e *engine) resetTiming(s workflow.Schedule) error {
	e.times = e.m.TimesInto(s, e.times)
	if e.t == nil {
		t, err := dag.NewTiming(e.w.Graph(), e.times, nil)
		if err != nil {
			return err
		}
		e.t = t
		return nil
	}
	return e.t.Update(e.times)
}

// updateNode applies the reassignment of module i to type j to the bound
// timing, re-relaxing only the affected suffix of the topological order.
func (e *engine) updateNode(i, j int) {
	e.t.UpdateNode(i, e.m.TE[i][j])
}

// critical fills the candidate scratch with the schedulable modules on the
// current critical path.
func (e *engine) critical() []int {
	e.cand = e.cand[:0]
	for _, i := range e.mods {
		if e.t.IsCritical(i) {
			e.cand = append(e.cand, i)
		}
	}
	return e.cand
}

// opts returns the dominance-pruned VM-type options for module i, falling
// back to all types when the matrices were built without BuildOptions.
func (e *engine) opts(i int) []int {
	if o := e.m.Options(i); o != nil {
		return o
	}
	return e.allTypes
}

// resetMoved clears and returns the per-module visited scratch.
func (e *engine) resetMoved() []bool {
	for i := range e.moved {
		e.moved[i] = false
	}
	return e.moved
}

// feasible runs the least-cost feasibility check into the engine's own
// schedule scratch, for schedulers that do not start from least-cost.
func (e *engine) feasible(budget float64) error {
	lc, _, err := checkFeasibleInto(e.w, e.m, budget, e.lc)
	if err != nil {
		return err
	}
	e.lc = lc
	return nil
}

// checkFeasibleInto is checkFeasible with a reusable destination for the
// least-cost schedule.
func checkFeasibleInto(w *workflow.Workflow, m *workflow.Matrices, budget float64, dst workflow.Schedule) (workflow.Schedule, float64, error) {
	lc := m.LeastCostInto(w, dst)
	cmin := m.Cost(lc)
	if budget < cmin {
		return nil, 0, fmt.Errorf("%w: budget %.6g < Cmin %.6g", ErrInfeasible, budget, cmin)
	}
	return lc, cmin, nil
}

// permInto fills p with a random permutation of 0..len(p)-1, drawing from
// rng exactly as math/rand.Perm does. Metaheuristics seeded before this
// change keep their random streams — and therefore their outputs —
// bit-for-bit identical while dropping Perm's per-call allocation.
func permInto(rng *rand.Rand, p []int) {
	for i := range p {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}
