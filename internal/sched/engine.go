package sched

import (
	"fmt"
	"math/rand"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// IntoScheduler is implemented by schedulers that can write their result
// into a caller-provided schedule, so repeated scheduling of the same
// instance runs without per-call result allocations.
type IntoScheduler interface {
	Scheduler
	// ScheduleInto behaves like Schedule but reuses dst for the result
	// when it has the right length (allocating otherwise).
	ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error)
}

// engine is the scratch state a scheduler keeps between calls: the
// incremental timing, the execution-time buffer it is bound to, the
// schedulable-module list, and candidate/visited scratch. Binding is keyed
// on the (workflow, matrices) pair, so a scheduler instance reused across
// calls on the same instance reaches a steady state with zero per-iteration
// heap allocations.
//
// A scheduler holding an engine is NOT safe for concurrent use; create one
// instance per goroutine (the registry constructors always return fresh
// instances).
//
// medcc:scratch
type engine struct {
	w *workflow.Workflow
	m *workflow.Matrices
	// wver/mver pin the graph version and matrices epoch the scratch was
	// built against: pooled builders rebuild workflows and matrices in
	// place behind unchanged pointers, so pointer equality alone would
	// let stale timings and module lists leak across instances.
	wver, mver uint64

	t        *dag.Timing
	times    []float64
	mods     []int
	cand     []int
	allTypes []int
	moved    []bool
	lc       workflow.Schedule
}

// bind points the engine at a (workflow, matrices) pair, reusing all
// scratch when the pair is unchanged since the last call.
//
// medcc:coldpath — (re)binding allocates the scratch; steady-state calls
// take the early return.
func (e *engine) bind(w *workflow.Workflow, m *workflow.Matrices) {
	if e.w == w && e.m == m && len(e.times) == w.NumModules() &&
		e.wver == w.Graph().Version() && e.mver == m.Epoch() {
		return
	}
	e.w, e.m = w, m
	e.wver, e.mver = w.Graph().Version(), m.Epoch()
	e.t = nil
	e.mods = w.Schedulable()
	e.cand = make([]int, 0, len(e.mods))
	nm := w.NumModules()
	e.times = make([]float64, nm)
	e.moved = make([]bool, nm)
	n := len(m.Catalog)
	e.allTypes = make([]int, n)
	for j := range e.allTypes {
		e.allTypes[j] = j
	}
}

// resetTiming refreshes the incremental timing to schedule s, constructing
// it on first use. Afterwards e.t aliases e.times: UpdateNode keeps both in
// sync, and callers must never write e.times directly before updating.
func (e *engine) resetTiming(s workflow.Schedule) error {
	e.times = e.m.TimesInto(s, e.times)
	if e.t == nil {
		t, err := dag.NewTiming(e.w.Graph(), e.times, nil)
		if err != nil {
			return err
		}
		e.t = t
		return nil
	}
	return e.t.Update(e.times)
}

// updateNode applies the reassignment of module i to type j to the bound
// timing, re-relaxing only the affected suffix of the topological order.
func (e *engine) updateNode(i, j int) {
	e.t.UpdateNode(i, e.m.TE[i][j])
}

// critical fills the candidate scratch with the schedulable modules on the
// current critical path.
func (e *engine) critical() []int {
	e.cand = e.cand[:0]
	for _, i := range e.mods {
		if e.t.IsCritical(i) {
			e.cand = append(e.cand, i)
		}
	}
	return e.cand
}

// opts returns the dominance-pruned VM-type options for module i, falling
// back to all types when the matrices were built without BuildOptions.
func (e *engine) opts(i int) []int {
	if o := e.m.Options(i); o != nil {
		return o
	}
	return e.allTypes
}

// resetMoved clears and returns the per-module visited scratch.
func (e *engine) resetMoved() []bool {
	for i := range e.moved {
		e.moved[i] = false
	}
	return e.moved
}

// feasible runs the least-cost feasibility check into the engine's own
// schedule scratch, for schedulers that do not start from least-cost.
func (e *engine) feasible(budget float64) error {
	lc, _, err := checkFeasibleInto(e.w, e.m, budget, e.lc)
	if err != nil {
		return err
	}
	e.lc = lc
	return nil
}

// checkFeasibleInto is checkFeasible with a reusable destination for the
// least-cost schedule.
func checkFeasibleInto(w *workflow.Workflow, m *workflow.Matrices, budget float64, dst workflow.Schedule) (workflow.Schedule, float64, error) {
	lc := m.LeastCostInto(w, dst)
	cmin := m.Cost(lc)
	if budget < cmin {
		return nil, 0, fmt.Errorf("%w: budget %.6g < Cmin %.6g", ErrInfeasible, budget, cmin)
	}
	return lc, cmin, nil
}

// permInto fills p with a random permutation of 0..len(p)-1, drawing from
// rng exactly as math/rand.Perm does. Metaheuristics seeded before this
// change keep their random streams — and therefore their outputs —
// bit-for-bit identical while dropping Perm's per-call allocation.
func permInto(rng *rand.Rand, p []int) {
	for i := range p {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}
