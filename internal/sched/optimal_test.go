package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/dag"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

// bruteForce enumerates every assignment without pruning — the reference
// oracle for Optimal.
func bruteForce(t *testing.T, w *workflow.Workflow, m *workflow.Matrices, budget float64) (float64, float64) {
	t.Helper()
	mods := w.Schedulable()
	n := len(m.Catalog)
	s := m.LeastCost(w)
	bestMED, bestCost := math.Inf(1), math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == len(mods) {
			cost := m.Cost(s)
			if cost > budget+1e-9 {
				return
			}
			tm, err := dag.NewTiming(w.Graph(), m.Times(s), nil)
			if err != nil {
				t.Fatal(err)
			}
			if tm.Makespan < bestMED-1e-9 ||
				(tm.Makespan <= bestMED+1e-9 && cost < bestCost-1e-9) {
				bestMED, bestCost = tm.Makespan, cost
			}
			return
		}
		for j := 0; j < n; j++ {
			s[mods[k]] = j
			rec(k + 1)
		}
	}
	rec(0)
	return bestMED, bestCost
}

func TestOptimalInfeasible(t *testing.T) {
	w, m := paperSetup(t)
	if _, err := (&Optimal{}).Schedule(w, m, 10); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestOptimalMatchesBruteForceOnPaperExample(t *testing.T) {
	w, m := paperSetup(t)
	for _, b := range []float64{48, 50, 53, 57, 61, 64} {
		res, err := Run(&Optimal{}, w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		wantMED, wantCost := bruteForce(t, w, m, b)
		if math.Abs(res.MED-wantMED) > 1e-9 {
			t.Fatalf("B=%v: optimal MED %v, brute force %v", b, res.MED, wantMED)
		}
		if math.Abs(res.Cost-wantCost) > 1e-9 {
			t.Fatalf("B=%v: optimal cost %v, brute force %v", b, res.Cost, wantCost)
		}
	}
}

func TestOptimalMatchesBruteForceOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 5, E: 6, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := cmin + rng.Float64()*(cmax-cmin)
		res, err := Run(&Optimal{}, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		wantMED, _ := bruteForce(t, wf, m, b)
		if math.Abs(res.MED-wantMED) > 1e-9 {
			t.Fatalf("trial %d B=%v: optimal %v != brute force %v", trial, b, res.MED, wantMED)
		}
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	algs := []string{"critical-greedy", "gain1", "gain2", "gain3", "gain-fixpoint", "loss1", "loss2"}
	for trial := 0; trial < 8; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 6, E: 11, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := (cmin + cmax) / 2
		opt, err := Run(&Optimal{}, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range algs {
			sc, _ := Get(name)
			res, err := Run(sc, wf, m, b)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if opt.MED > res.MED+1e-9 {
				t.Fatalf("trial %d: optimal MED %v worse than %s %v", trial, opt.MED, name, res.MED)
			}
		}
	}
}

func TestOptimalTieBreaksTowardLowerCost(t *testing.T) {
	// Two types, identical times, different costs: the optimum must
	// pick the cheap one even with budget to spare.
	cat := cloud.Catalog{
		{Name: "cheap", Power: 5, Rate: 1},
		{Name: "pricey", Power: 5, Rate: 7},
	}
	w := workflow.New()
	w.AddModule(workflow.Module{Name: "m", Workload: 10})
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&Optimal{}, w, m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule[0] != 0 {
		t.Fatalf("optimal chose pricey type at equal makespan: %v", res.Schedule)
	}
}

func TestOptimalMaxNodesGuardStillFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 8, E: 18, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	cmin, cmax := m.BudgetRange(wf)
	b := (cmin + cmax) / 2
	res, err := Run(&Optimal{MaxNodes: 10}, wf, m, b)
	if err != nil {
		t.Fatal(err)
	}
	// With a starved node budget the search returns the incumbent
	// (Critical-Greedy seed) schedule, which is still budget-feasible.
	if res.Cost > b+1e-9 {
		t.Fatalf("guarded optimal overspent: %v > %v", res.Cost, b)
	}
	if !res.Truncated {
		t.Fatal("starved search did not report truncation")
	}
}
