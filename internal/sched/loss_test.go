package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

func TestLOSSInfeasible(t *testing.T) {
	w, m := paperSetup(t)
	for _, v := range []int{1, 2, 3} {
		if _, err := (&LOSS{Variant: v}).Schedule(w, m, 47); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("LOSS%d err = %v", v, err)
		}
	}
}

func TestLOSSAtCmaxReturnsFastest(t *testing.T) {
	w, m := paperSetup(t)
	for _, v := range []int{1, 2, 3} {
		s, err := (&LOSS{Variant: v}).Schedule(w, m, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(m.Fastest(w)) {
			t.Fatalf("LOSS%d at Cmax = %v", v, s)
		}
	}
}

func TestLOSSRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 10, E: 17, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			b := cmin + frac*(cmax-cmin)
			for _, v := range []int{1, 2, 3} {
				res, err := Run(&LOSS{Variant: v}, wf, m, b)
				if err != nil {
					t.Fatalf("LOSS%d B=%v: %v", v, b, err)
				}
				if res.Cost > b+1e-9 {
					t.Fatalf("LOSS%d overspent: %v > %v", v, res.Cost, b)
				}
			}
		}
	}
}

func TestLOSSDowngradePathPrefersLowTimeLoss(t *testing.T) {
	// Two independent modules at the fastest type; budget forces one
	// downgrade. On a LossWeight tie the bigger cost saving must win.
	cat := cloud.Catalog{
		{Name: "slow", Power: 1, Rate: 0.1},
		{Name: "fast", Power: 10, Rate: 4},
	}
	w := workflow.New()
	w.AddModule(workflow.Module{Name: "w0", Workload: 60})
	w.AddModule(workflow.Module{Name: "w1", Workload: 10})
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	// fastest: w0 $24, w1 $4 (total 28). least-cost: w0 $6, w1 $1.
	// Downgrading w1 saves 3, loses 9h; w0 saves 18, loses 54h.
	// LossWeights: w1 9/3 = 3; w0 54/18 = 3. Tie -> larger saving (w0).
	b := 28.0 - 4 // force roughly one downgrade
	s, err := (&LOSS{Variant: 1}).Schedule(w, m, b)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 0 || s[1] != 1 {
		t.Fatalf("schedule = %v, want w0 downgraded (bigger saving on tie)", s)
	}
}

func TestLOSSNeverSlowerThanCGAtSameBudgetOnPipeline(t *testing.T) {
	// On a pipeline every module is critical, so CG and LOSS explore the
	// same structure from opposite ends; both must respect the budget
	// and produce comparable MEDs (neither dominates in general, but
	// both must beat the least-cost schedule when budget allows).
	rng := rand.New(rand.NewSource(3))
	wf := gen.Pipeline(rng, 6, 100, 1000)
	cat := cloud.DiminishingCatalog(4, 3, 1, 0.75)
	m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(wf)
	lcEv, _ := wf.Evaluate(m, m.LeastCost(wf), nil)
	b := (cmin + cmax) / 2
	for _, name := range []string{"critical-greedy", "loss1", "loss2", "loss3"} {
		sc, _ := Get(name)
		res, err := Run(sc, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.MED > lcEv.Makespan+1e-9 {
			t.Fatalf("%s MED %v worse than least-cost %v", name, res.MED, lcEv.Makespan)
		}
		if math.IsNaN(res.MED) {
			t.Fatalf("%s produced NaN", name)
		}
	}
}
