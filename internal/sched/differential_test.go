package sched

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/dag"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

// This file pins the schedulers to their pre-incremental behaviour: the
// reference implementations below are verbatim copies of the algorithms as
// they stood before the allocation-free timing engine landed — every
// iteration rebuilds a fresh dag.Timing and scans all VM types. The live
// schedulers must produce bit-for-bit identical schedules (same VM type per
// module, same tie-breaking) on the paper's full problem-size grid.

// refGreedy is the pre-engine Greedy.Schedule: fresh Timing per iteration,
// full type scan, Schedulable() re-built per call.
func refGreedy(cand CandidateSet, rank Criterion, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	n := len(m.Catalog)
	better := func(dt, dc, bestDT, bestDC float64) bool {
		switch rank {
		case MaxRatio:
			r, br := ratio(dt, dc), ratio(bestDT, bestDC)
			if r != br {
				return r > br
			}
			return dt > bestDT+dag.Eps
		default:
			if dt > bestDT+dag.Eps {
				return true
			}
			if dt < bestDT-dag.Eps {
				return false
			}
			return dc < bestDC-costEps
		}
	}
	candidates := func() ([]int, error) {
		if cand == AllModules {
			return w.Schedulable(), nil
		}
		t, err := dag.NewTiming(w.Graph(), m.Times(s), nil)
		if err != nil {
			return nil, err
		}
		var out []int
		for _, i := range w.Schedulable() {
			if t.IsCritical(i) {
				out = append(out, i)
			}
		}
		return out, nil
	}
	for {
		cextra := budget - ctmp
		if cextra <= 0 {
			break
		}
		cs, err := candidates()
		if err != nil {
			return nil, err
		}
		bi, bj := -1, -1
		var bestDT, bestDC float64
		for _, i := range cs {
			told := m.TE[i][s[i]]
			cold := m.CE[i][s[i]]
			for j := 0; j < n; j++ {
				if j == s[i] {
					continue
				}
				dt := told - m.TE[i][j]
				dc := m.CE[i][j] - cold
				if dt <= dag.Eps {
					continue
				}
				if dc > cextra+costEps {
					continue
				}
				if bi == -1 || better(dt, dc, bestDT, bestDC) {
					bi, bj, bestDT, bestDC = i, j, dt, dc
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		ctmp += bestDC
	}
	return s, nil
}

// refGainStatic is the pre-engine GAIN1.
func refGainStatic(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	type upgrade struct {
		i, j   int
		dt, dc float64
	}
	var ups []upgrade
	for _, i := range w.Schedulable() {
		for j := range m.Catalog {
			if j == s[i] {
				continue
			}
			dt := m.TE[i][s[i]] - m.TE[i][j]
			dc := m.CE[i][j] - m.CE[i][s[i]]
			if dt <= dag.Eps {
				continue
			}
			ups = append(ups, upgrade{i, j, dt, dc})
		}
	}
	sort.SliceStable(ups, func(a, b int) bool {
		ra, rb := ratio(ups[a].dt, ups[a].dc), ratio(ups[b].dt, ups[b].dc)
		if ra != rb {
			return ra > rb
		}
		return ups[a].dt > ups[b].dt
	})
	moved := make(map[int]bool)
	for _, u := range ups {
		if moved[u.i] {
			continue
		}
		if u.dc > budget-ctmp+costEps {
			continue
		}
		s[u.i] = u.j
		moved[u.i] = true
		ctmp += u.dc
	}
	return s, nil
}

// refGainOncePerTask is the pre-engine GAIN2 (makespanWeight) / GAIN3.
func refGainOncePerTask(w *workflow.Workflow, m *workflow.Matrices, budget float64, makespanWeight bool) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	moved := make(map[int]bool)
	for {
		cextra := budget - ctmp
		if cextra <= 0 {
			break
		}
		var cur *dag.Timing
		if makespanWeight {
			t, terr := dag.NewTiming(w.Graph(), m.Times(s), nil)
			if terr != nil {
				return nil, terr
			}
			cur = t
		}
		bi, bj := -1, -1
		var bestDT, bestDC float64
		for _, i := range w.Schedulable() {
			if moved[i] {
				continue
			}
			for j := range m.Catalog {
				if j == s[i] {
					continue
				}
				dc := m.CE[i][j] - m.CE[i][s[i]]
				if dc > cextra+costEps {
					continue
				}
				var dt float64
				if makespanWeight {
					if m.TE[i][s[i]]-m.TE[i][j] <= dag.Eps {
						continue
					}
					trial := s.Clone()
					trial[i] = j
					tt, terr := dag.NewTiming(w.Graph(), m.Times(trial), nil)
					if terr != nil {
						return nil, terr
					}
					dt = cur.Makespan - tt.Makespan
				} else {
					dt = m.TE[i][s[i]] - m.TE[i][j]
				}
				if dt <= dag.Eps {
					continue
				}
				if bi == -1 || ratio(dt, dc) > ratio(bestDT, bestDC) ||
					(ratio(dt, dc) == ratio(bestDT, bestDC) && dt > bestDT+dag.Eps) {
					bi, bj, bestDT, bestDC = i, j, dt, dc
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		moved[bi] = true
		ctmp += bestDC
	}
	return s, nil
}

// refLoss is the pre-engine LOSS1 (makespanWeight false) / LOSS2 (true).
func refLoss(w *workflow.Workflow, m *workflow.Matrices, budget float64, makespanWeight bool) (workflow.Schedule, error) {
	if _, _, err := checkFeasible(w, m, budget); err != nil {
		return nil, err
	}
	s := m.Fastest(w)
	ctmp := m.Cost(s)
	for ctmp > budget+costEps {
		var cur *dag.Timing
		if makespanWeight {
			t, err := dag.NewTiming(w.Graph(), m.Times(s), nil)
			if err != nil {
				return nil, err
			}
			cur = t
		}
		bi, bj := -1, -1
		var bestW, bestDC float64
		for _, i := range w.Schedulable() {
			for j := range m.Catalog {
				if j == s[i] {
					continue
				}
				dc := m.CE[i][s[i]] - m.CE[i][j]
				if dc <= costEps {
					continue
				}
				var dt float64
				if makespanWeight {
					trial := s.Clone()
					trial[i] = j
					tt, err := dag.NewTiming(w.Graph(), m.Times(trial), nil)
					if err != nil {
						return nil, err
					}
					dt = tt.Makespan - cur.Makespan
				} else {
					dt = m.TE[i][j] - m.TE[i][s[i]]
				}
				if dt < 0 {
					dt = 0
				}
				wgt := dt / dc
				if bi == -1 || wgt < bestW-dag.Eps ||
					(wgt <= bestW+dag.Eps && dc > bestDC+costEps) {
					bi, bj, bestW, bestDC = i, j, wgt, dc
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		ctmp -= bestDC
	}
	return s, nil
}

// refLossStatic is the pre-engine LOSS3.
func refLossStatic(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	if _, _, err := checkFeasible(w, m, budget); err != nil {
		return nil, err
	}
	s := m.Fastest(w)
	ctmp := m.Cost(s)
	type downgrade struct {
		i, j   int
		weight float64
		save   float64
	}
	var downs []downgrade
	for _, i := range w.Schedulable() {
		for j := range m.Catalog {
			if j == s[i] {
				continue
			}
			save := m.CE[i][s[i]] - m.CE[i][j]
			if save <= costEps {
				continue
			}
			dt := m.TE[i][j] - m.TE[i][s[i]]
			if dt < 0 {
				dt = 0
			}
			downs = append(downs, downgrade{i, j, dt / save, save})
		}
	}
	sort.SliceStable(downs, func(a, b int) bool {
		if downs[a].weight != downs[b].weight {
			return downs[a].weight < downs[b].weight
		}
		return downs[a].save > downs[b].save
	})
	moved := make(map[int]bool)
	for _, d := range downs {
		if ctmp <= budget+costEps {
			break
		}
		if moved[d.i] {
			continue
		}
		ctmp -= m.CE[d.i][s[d.i]] - m.CE[d.i][d.j]
		s[d.i] = d.j
		moved[d.i] = true
	}
	for _, d := range downs {
		if ctmp <= budget+costEps {
			break
		}
		save := m.CE[d.i][s[d.i]] - m.CE[d.i][d.j]
		if save <= costEps {
			continue
		}
		ctmp -= save
		s[d.i] = d.j
	}
	return s, nil
}

// refGain3WRF is the pre-engine Gain3WRF.
func refGain3WRF(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	for {
		movedAny := false
		movedThisRound := make(map[int]bool)
		for {
			cextra := budget - ctmp
			if cextra <= 0 {
				break
			}
			bi, bj := -1, -1
			best := math.Inf(-1)
			for _, i := range w.Schedulable() {
				if movedThisRound[i] {
					continue
				}
				for j := range m.Catalog {
					if j == s[i] {
						continue
					}
					told, tnew := m.TE[i][s[i]], m.TE[i][j]
					dc := m.CE[i][j] - m.CE[i][s[i]]
					if told-tnew <= dag.Eps || dc > cextra+costEps {
						continue
					}
					wt := math.Inf(1)
					if dc > costEps {
						wt = (told / tnew) / dc
					}
					if wt > best {
						bi, bj, best = i, j, wt
					}
				}
			}
			if bi == -1 {
				break
			}
			ctmp += m.CE[bi][bj] - m.CE[bi][s[bi]]
			s[bi] = bj
			movedThisRound[bi] = true
			movedAny = true
		}
		if !movedAny {
			break
		}
	}
	return s, nil
}

// refDeadlineLoss is the pre-engine DeadlineLoss.
func refDeadlineLoss(w *workflow.Workflow, m *workflow.Matrices, deadline float64) (*Result, error) {
	s := m.Fastest(w)
	ev, err := w.Evaluate(m, s, nil)
	if err != nil {
		return nil, err
	}
	if ev.Makespan > deadline+dag.Eps {
		return nil, ErrDeadline
	}
	cost := ev.Cost
	cur := ev.Makespan
	for {
		bi, bj := -1, -1
		var bestSave, bestDM float64
		for _, i := range w.Schedulable() {
			for j := range m.Catalog {
				if j == s[i] {
					continue
				}
				save := m.CE[i][s[i]] - m.CE[i][j]
				if save <= costEps {
					continue
				}
				trial := s.Clone()
				trial[i] = j
				t, terr := dag.NewTiming(w.Graph(), m.Times(trial), nil)
				if terr != nil {
					return nil, terr
				}
				if t.Makespan > deadline+dag.Eps {
					continue
				}
				dm := t.Makespan - cur
				if bi == -1 || save > bestSave+costEps ||
					(save >= bestSave-costEps && dm < bestDM-dag.Eps) {
					bi, bj, bestSave, bestDM = i, j, save, dm
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		cost -= bestSave
		cur += bestDM
	}
	return &Result{Schedule: s, MED: cur, Cost: cost}, nil
}

// diffInstance builds instance k of a paper problem size exactly like the
// experiment harness (internal/exper.buildInstance).
func diffInstance(t *testing.T, k int, size gen.ProblemSize) (*workflow.Workflow, *workflow.Matrices, float64, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(2013 + int64(k)*1_000_003))
	w, cat, err := gen.Instance(rng, size)
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(w)
	return w, m, cmin, cmax
}

func requireSameSchedule(t *testing.T, name string, size gen.ProblemSize, budget float64, got, want workflow.Schedule) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s on %v at budget %.6g: schedule diverged from reference\n got: %v\nwant: %v",
			name, size, budget, got, want)
	}
}

// TestDifferentialPaperGrid is the acceptance-criteria differential: CG,
// GAIN3, gain3-wrf, LOSS1, and DeadlineLoss must match the pre-engine
// reference bit-for-bit across all 20 paper problem sizes x 5 budget
// levels.
func TestDifferentialPaperGrid(t *testing.T) {
	sizes := gen.PaperProblemSizes()
	if testing.Short() {
		sizes = sizes[:8]
	}
	for _, size := range sizes {
		w, m, cmin, cmax := diffInstance(t, size.M, size)
		for k := 1; k <= 5; k++ {
			budget := cmin + float64(k)/5*(cmax-cmin)

			wantCG, err := refGreedy(CriticalOnly, MaxTimeDecrease, w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			gotCG, err := CriticalGreedy().Schedule(w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, "critical-greedy", size, budget, gotCG, wantCG)

			wantG3, err := refGainOncePerTask(w, m, budget, false)
			if err != nil {
				t.Fatal(err)
			}
			gotG3, err := (&GAIN{Variant: 3}).Schedule(w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, "gain3", size, budget, gotG3, wantG3)

			wantWRF, err := refGain3WRF(w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			gotWRF, err := (&Gain3WRF{}).Schedule(w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, "gain3-wrf", size, budget, gotWRF, wantWRF)

			wantL1, err := refLoss(w, m, budget, false)
			if err != nil {
				t.Fatal(err)
			}
			gotL1, err := (&LOSS{Variant: 1}).Schedule(w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, "loss1", size, budget, gotL1, wantL1)

			// Deadline dual: sweep deadlines derived from the fastest and
			// least-cost makespans, mirroring the budget sweep.
			evFast, err := w.Evaluate(m, m.Fastest(w), nil)
			if err != nil {
				t.Fatal(err)
			}
			evLC, err := w.Evaluate(m, m.LeastCost(w), nil)
			if err != nil {
				t.Fatal(err)
			}
			deadline := evFast.Makespan + float64(k)/5*(evLC.Makespan-evFast.Makespan)
			wantDL, err := refDeadlineLoss(w, m, deadline)
			if err != nil {
				t.Fatal(err)
			}
			gotDL, err := DeadlineLoss(w, m, deadline)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, "deadline-loss", size, deadline, gotDL.Schedule, wantDL.Schedule)
			if gotDL.MED != wantDL.MED || gotDL.Cost != wantDL.Cost {
				t.Fatalf("deadline-loss on %v: MED/Cost %.9g/%.9g, want %.9g/%.9g",
					size, gotDL.MED, gotDL.Cost, wantDL.MED, wantDL.Cost)
			}
		}
	}
}

// TestDifferentialSlowAlgorithms covers the quadratic and static variants
// (GAIN1/2, LOSS2/3, the Greedy ablation grid) on the smaller sizes where
// the reference implementations stay fast.
func TestDifferentialSlowAlgorithms(t *testing.T) {
	sizes := gen.PaperProblemSizes()[:6]
	for _, size := range sizes {
		w, m, cmin, cmax := diffInstance(t, size.M, size)
		for k := 1; k <= 5; k++ {
			budget := cmin + float64(k)/5*(cmax-cmin)

			type pair struct {
				name string
				ref  func() (workflow.Schedule, error)
				live func() (workflow.Schedule, error)
			}
			cases := []pair{
				{"gain1",
					func() (workflow.Schedule, error) { return refGainStatic(w, m, budget) },
					func() (workflow.Schedule, error) { return (&GAIN{Variant: 1}).Schedule(w, m, budget) }},
				{"gain2",
					func() (workflow.Schedule, error) { return refGainOncePerTask(w, m, budget, true) },
					func() (workflow.Schedule, error) { return (&GAIN{Variant: 2}).Schedule(w, m, budget) }},
				{"loss2",
					func() (workflow.Schedule, error) { return refLoss(w, m, budget, true) },
					func() (workflow.Schedule, error) { return (&LOSS{Variant: 2}).Schedule(w, m, budget) }},
				{"loss3",
					func() (workflow.Schedule, error) { return refLossStatic(w, m, budget) },
					func() (workflow.Schedule, error) { return (&LOSS{Variant: 3}).Schedule(w, m, budget) }},
				{"critical-ratio",
					func() (workflow.Schedule, error) { return refGreedy(CriticalOnly, MaxRatio, w, m, budget) },
					func() (workflow.Schedule, error) {
						g := &Greedy{Label: "critical-ratio", Candidates: CriticalOnly, Rank: MaxRatio}
						return g.Schedule(w, m, budget)
					}},
				{"all-timedec",
					func() (workflow.Schedule, error) { return refGreedy(AllModules, MaxTimeDecrease, w, m, budget) },
					func() (workflow.Schedule, error) {
						g := &Greedy{Label: "all-timedec", Candidates: AllModules, Rank: MaxTimeDecrease}
						return g.Schedule(w, m, budget)
					}},
				{"gain-fixpoint",
					func() (workflow.Schedule, error) { return refGreedy(AllModules, MaxRatio, w, m, budget) },
					func() (workflow.Schedule, error) {
						g := &Greedy{Label: "gain-fixpoint", Candidates: AllModules, Rank: MaxRatio}
						return g.Schedule(w, m, budget)
					}},
			}
			for _, c := range cases {
				want, err := c.ref()
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.live()
				if err != nil {
					t.Fatal(err)
				}
				requireSameSchedule(t, c.name, size, budget, got, want)
			}
		}
	}
}

// TestEngineRebind ensures a single scheduler instance can be reused across
// different (workflow, matrices) pairs without contaminating state.
func TestEngineRebind(t *testing.T) {
	sizes := []gen.ProblemSize{{M: 10, E: 17, N: 4}, {M: 25, E: 201, N: 5}, {M: 15, E: 65, N: 5}}
	g := CriticalGreedy()
	g3 := &GAIN{Variant: 3}
	for round := 0; round < 2; round++ {
		for _, size := range sizes {
			w, m, cmin, cmax := diffInstance(t, size.M, size)
			budget := cmin + 0.5*(cmax-cmin)
			want, err := refGreedy(CriticalOnly, MaxTimeDecrease, w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.Schedule(w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, "rebound critical-greedy", size, budget, got, want)

			wantG, err := refGainOncePerTask(w, m, budget, false)
			if err != nil {
				t.Fatal(err)
			}
			gotG, err := g3.Schedule(w, m, budget)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, "rebound gain3", size, budget, gotG, wantG)
		}
	}
}

// TestScheduleIntoMatchesSchedule pins the zero-alloc entry point to the
// plain one, including destination reuse across calls.
func TestScheduleIntoMatchesSchedule(t *testing.T) {
	size := gen.ProblemSize{M: 25, E: 201, N: 5}
	w, m, cmin, cmax := diffInstance(t, size.M, size)
	g := CriticalGreedy()
	dst := make(workflow.Schedule, w.NumModules())
	for k := 1; k <= 5; k++ {
		budget := cmin + float64(k)/5*(cmax-cmin)
		want, err := g.Schedule(w, m, budget)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.ScheduleInto(dst, w, m, budget)
		if err != nil {
			t.Fatal(err)
		}
		if &got[0] != &dst[0] {
			t.Fatal("ScheduleInto did not reuse dst")
		}
		requireSameSchedule(t, "ScheduleInto", size, budget, got, want)
	}
}
