package sched

import (
	"sort"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// ParetoPoint is one non-dominated (cost, MED) trade-off.
type ParetoPoint struct {
	Budget   float64 // the budget that produced the point
	Cost     float64 // actual spend (<= Budget)
	MED      float64
	Schedule workflow.Schedule
}

// ParetoFront traces the delay/cost trade-off curve of a workflow by
// sweeping `points` budgets across [Cmin, Cmax] with the given scheduler
// and keeping the non-dominated outcomes (no other point is both cheaper
// and faster). The front is returned in increasing cost order; for an
// exact front on small instances pass the "optimal" scheduler.
func ParetoFront(s Scheduler, w *workflow.Workflow, m *workflow.Matrices, points int) ([]ParetoPoint, error) {
	if points < 2 {
		points = 2
	}
	cmin, cmax := m.BudgetRange(w)
	var raw []ParetoPoint
	for k := 0; k < points; k++ {
		b := cmin + float64(k)/float64(points-1)*(cmax-cmin)
		res, err := Run(s, w, m, b)
		if err != nil {
			return nil, err
		}
		raw = append(raw, ParetoPoint{Budget: b, Cost: res.Cost, MED: res.MED, Schedule: res.Schedule})
	}
	// Keep the lower-left staircase: sort by cost, then sweep keeping
	// strictly improving MED.
	sort.SliceStable(raw, func(a, b int) bool {
		// medcc:lint-ignore floateq — comparator needs a strict weak order; epsilon would break transitivity.
		if raw[a].Cost != raw[b].Cost {
			return raw[a].Cost < raw[b].Cost
		}
		return raw[a].MED < raw[b].MED
	})
	var front []ParetoPoint
	bestMED := 0.0
	for _, p := range raw {
		if len(front) == 0 || p.MED < bestMED-dag.Eps {
			// Budgets landing on the same spend within float jitter
			// collapse to their fastest schedule: replacing the
			// incumbent keeps the staircase strictly improving on both
			// axes instead of emitting near-duplicate cost entries.
			if len(front) > 0 && sameCost(front[len(front)-1].Cost, p.Cost) {
				front[len(front)-1] = p
			} else {
				front = append(front, p)
			}
			bestMED = p.MED
		}
	}
	return front, nil
}
