package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
)

func TestDeadlineLossInfeasible(t *testing.T) {
	w, m := paperSetup(t)
	// Fastest makespan of the example is 4.6.
	if _, err := DeadlineLoss(w, m, 4.0); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v", err)
	}
	if _, err := OptimalDeadline(w, m, 4.0, 0); !errors.Is(err, ErrDeadline) {
		t.Fatalf("optimal err = %v", err)
	}
}

func TestDeadlineLossLooseDeadlineReachesLeastCost(t *testing.T) {
	w, m := paperSetup(t)
	// With a deadline beyond the least-cost makespan (17.33), every
	// downgrade is allowed and the greedy must land on Cmin = 48.
	res, err := DeadlineLoss(w, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 48 {
		t.Fatalf("cost = %v, want 48", res.Cost)
	}
}

func TestDeadlineLossTightDeadlineKeepsFastest(t *testing.T) {
	w, m := paperSetup(t)
	res, err := DeadlineLoss(w, m, 4.6)
	if err != nil {
		t.Fatal(err)
	}
	if res.MED > 4.6+1e-9 {
		t.Fatalf("MED %v over deadline", res.MED)
	}
	// At the exact fastest makespan some downgrades may still be free
	// (off-critical modules); cost must not exceed Cmax = 64.
	if res.Cost > 64 {
		t.Fatalf("cost = %v", res.Cost)
	}
}

func TestDeadlineRespectedOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 10, E: 17, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		fastEv, _ := wf.Evaluate(m, m.Fastest(wf), nil)
		lcEv, _ := wf.Evaluate(m, m.LeastCost(wf), nil)
		for _, frac := range []float64{1.0, 1.2, 1.5, 3.0} {
			d := fastEv.Makespan * frac
			res, err := DeadlineLoss(wf, m, d)
			if err != nil {
				t.Fatalf("trial %d frac %v: %v", trial, frac, err)
			}
			if res.MED > d+1e-9 {
				t.Fatalf("trial %d: MED %v over deadline %v", trial, res.MED, d)
			}
			if res.Cost < lcEv.Cost-1e-9 {
				t.Fatalf("trial %d: cost %v below Cmin %v — accounting bug", trial, res.Cost, lcEv.Cost)
			}
			if res.Cost > fastEv.Cost+1e-9 {
				t.Fatalf("trial %d: cost %v above fastest cost", trial, res.Cost)
			}
		}
	}
}

func TestOptimalDeadlineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 8; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 5, E: 6, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		fastEv, _ := wf.Evaluate(m, m.Fastest(wf), nil)
		lcEv, _ := wf.Evaluate(m, m.LeastCost(wf), nil)
		d := fastEv.Makespan + rng.Float64()*(lcEv.Makespan-fastEv.Makespan)

		res, err := OptimalDeadline(wf, m, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force the dual.
		mods := wf.Schedulable()
		best := math.Inf(1)
		s := m.LeastCost(wf)
		var rec func(k int)
		rec = func(k int) {
			if k == len(mods) {
				ev, err := wf.Evaluate(m, s, nil)
				if err != nil {
					t.Fatal(err)
				}
				if ev.Makespan <= d+1e-9 && ev.Cost < best {
					best = ev.Cost
				}
				return
			}
			for j := range m.Catalog {
				s[mods[k]] = j
				rec(k + 1)
			}
		}
		rec(0)
		if math.Abs(res.Cost-best) > 1e-9 {
			t.Fatalf("trial %d: optimal-deadline cost %v, brute force %v", trial, res.Cost, best)
		}
		if res.MED > d+1e-9 {
			t.Fatalf("trial %d: MED %v over deadline", trial, res.MED)
		}
	}
}

func TestDeadlineLossNeverBeatsOptimalDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 8; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 6, E: 11, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		fastEv, _ := wf.Evaluate(m, m.Fastest(wf), nil)
		d := fastEv.Makespan * 1.4
		heur, err := DeadlineLoss(wf, m, d)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalDeadline(wf, m, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if heur.Cost < opt.Cost-1e-9 {
			t.Fatalf("trial %d: heuristic cost %v below optimum %v", trial, heur.Cost, opt.Cost)
		}
	}
}

// TestBudgetDeadlineDuality traces both sides of the Pareto front on small
// instances: solving MED-CC optimally at budget B and then solving the
// dual optimally at the achieved makespan must not cost more than B.
func TestBudgetDeadlineDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 8; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 5, E: 6, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := cmin + rng.Float64()*(cmax-cmin)
		primal, err := Run(&Optimal{}, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		dual, err := OptimalDeadline(wf, m, primal.MED, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dual.Cost > b+1e-9 {
			t.Fatalf("trial %d: dual cost %v exceeds primal budget %v", trial, dual.Cost, b)
		}
		if dual.MED > primal.MED+1e-9 {
			t.Fatalf("trial %d: dual overshoots the deadline", trial)
		}
	}
}
