package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
)

func TestAnnealInfeasible(t *testing.T) {
	w, m := paperSetup(t)
	if _, err := (&Anneal{Seed: 1}).Schedule(w, m, 40); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestAnnealNeverWorseThanItsSeedSchedule(t *testing.T) {
	w, m := paperSetup(t)
	for _, b := range []float64{50, 57, 64} {
		cg, err := Run(CriticalGreedy(), w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		an, err := Run(&Anneal{Seed: 1}, w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if an.Cost > b+1e-9 {
			t.Fatalf("B=%v: anneal over budget", b)
		}
		if an.MED > cg.MED+1e-9 {
			t.Fatalf("B=%v: anneal %v worse than CG seed %v", b, an.MED, cg.MED)
		}
	}
}

func TestAnnealReachesOptimumOnExample(t *testing.T) {
	w, m := paperSetup(t)
	an, err := Run(&Anneal{Seed: 1, Iterations: 3000}, w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(&Optimal{}, w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.MED-opt.MED) > 1e-9 {
		t.Fatalf("anneal %v vs optimal %v", an.MED, opt.MED)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	w, m := paperSetup(t)
	a1, err := (&Anneal{Seed: 4}).Schedule(w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := (&Anneal{Seed: 4}).Schedule(w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("same seed produced different schedules")
	}
}

func TestAnnealOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 3; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 12, E: 25, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := (cmin + cmax) / 2
		an, err := Run(&Anneal{Seed: int64(trial), Iterations: 1500}, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if an.Cost > b+1e-9 || math.IsNaN(an.MED) {
			t.Fatalf("trial %d: bad result %+v", trial, an)
		}
	}
}
