package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

func TestGAIN3PaperExampleAtB57(t *testing.T) {
	// GainWeights from the least-cost schedule: w4->VT3 (6/1), then
	// w3->VT3 (6.3/1), then w6->VT3 (5.4/2); with the remaining 5 units
	// at B=57, w2->VT3 (ratio 1/3) wins the w2/w5 tie by index. GAIN3
	// ends at cost 56 with w5 and w1 unmoved.
	w, m := paperSetup(t)
	res, err := Run(&GAIN{Variant: 3}, w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	want := workflow.Schedule{-1, 1, 2, 2, 2, 1, 2, -1}
	if !res.Schedule.Equal(want) {
		t.Fatalf("GAIN3 schedule = %v, want %v", res.Schedule, want)
	}
	if res.Cost != 56 {
		t.Fatalf("GAIN3 cost = %v, want 56", res.Cost)
	}
}

func TestGAINInfeasible(t *testing.T) {
	w, m := paperSetup(t)
	for v := 1; v <= 3; v++ {
		if _, err := (&GAIN{Variant: v}).Schedule(w, m, 40); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("GAIN%d err = %v", v, err)
		}
	}
}

func TestGAINVariantsRespectBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 12, E: 25, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			t.Fatal(err)
		}
		cmin, cmax := m.BudgetRange(wf)
		b := cmin + rng.Float64()*(cmax-cmin)
		for v := 1; v <= 3; v++ {
			res, err := Run(&GAIN{Variant: v}, wf, m, b)
			if err != nil {
				t.Fatalf("GAIN%d: %v", v, err)
			}
			if res.Cost > b+1e-9 {
				t.Fatalf("GAIN%d overspent: %v > %v", v, res.Cost, b)
			}
		}
	}
}

func TestGAIN2NeverWorseThanLeastCostMakespan(t *testing.T) {
	// GAIN2 only applies moves that strictly decrease the makespan, so
	// its MED is <= the least-cost schedule's MED.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 8, E: 14, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		lcEv, _ := wf.Evaluate(m, m.LeastCost(wf), nil)
		res, err := Run(&GAIN{Variant: 2}, wf, m, (cmin+cmax)/2)
		if err != nil {
			t.Fatal(err)
		}
		if res.MED > lcEv.Makespan+1e-9 {
			t.Fatalf("GAIN2 MED %v above least-cost %v", res.MED, lcEv.Makespan)
		}
	}
}

func TestGAIN1SinglePassUpgradesAtMostOncePerModule(t *testing.T) {
	w, m := paperSetup(t)
	lc := m.LeastCost(w)
	s, err := (&GAIN{Variant: 1}).Schedule(w, m, 64)
	if err != nil {
		t.Fatal(err)
	}
	// With the full Cmax budget every module can afford its best-ratio
	// upgrade; all moved modules must differ from least-cost by exactly
	// one reassignment each (trivially true), and cost stays <= 64.
	if got := m.Cost(s); got > 64+1e-9 {
		t.Fatalf("cost %v over budget", got)
	}
	moved := 0
	for i := range s {
		if s[i] != lc[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("GAIN1 moved nothing with full budget")
	}
}

// TestCGBeatsGAIN3OnBranchTrap reproduces the paper's §VI discussion with
// a deterministic instance: branch modules carry the best local GainWeight
// ratios, so GAIN3 spends the budget off the critical path while CG
// attacks the critical path directly.
func TestCGBeatsGAIN3OnBranchTrap(t *testing.T) {
	// Chain hot1 -> hot2 is critical; two independent branch modules
	// have better local upgrade ratios (their times divide the billing
	// unit evenly while the hot modules' upgraded times round up) but
	// zero global impact.
	cat := cloud.Catalog{
		{Name: "VT1", Power: 1, Rate: 1},
		{Name: "VT4", Power: 4, Rate: 5},
	}
	// hot (WL=25): VT1 25h/$25 -> VT4 6.25h/$35: dT 18.75, dC 10,
	// ratio 1.875. branch (WL=8): VT1 8h/$8 -> VT4 2h/$10: dT 6, dC 2,
	// ratio 3. GAIN3 upgrades both branches first (dC 4), then only one
	// hot module fits in the leftover budget.
	w := workflow.New()
	hot1 := w.AddModule(workflow.Module{Name: "hot1", Workload: 25})
	hot2 := w.AddModule(workflow.Module{Name: "hot2", Workload: 25})
	if err := w.AddDependency(hot1, hot2, 0); err != nil {
		t.Fatal(err)
	}
	w.AddModule(workflow.Module{Name: "branch1", Workload: 8})
	w.AddModule(workflow.Module{Name: "branch2", Workload: 8})
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin := m.Cost(m.LeastCost(w)) // 25+25+8+8 = 66
	if cmin != 66 {
		t.Fatalf("Cmin = %v, want 66", cmin)
	}
	budget := cmin + 20.0 // exactly both hot upgrades, or branches + one

	cgRes, err := Run(CriticalGreedy(), w, m, budget)
	if err != nil {
		t.Fatal(err)
	}
	g3Res, err := Run(&GAIN{Variant: 3}, w, m, budget)
	if err != nil {
		t.Fatal(err)
	}
	// CG: upgrades hot1 and hot2 (25h -> 6.25h each): MED 12.5.
	if math.Abs(cgRes.MED-12.5) > 1e-9 {
		t.Fatalf("CG MED = %v, want 12.5", cgRes.MED)
	}
	// GAIN3: branches first (ratio 3), then one hot module: MED 31.25.
	if math.Abs(g3Res.MED-31.25) > 1e-9 {
		t.Fatalf("GAIN3 MED = %v, want 31.25", g3Res.MED)
	}
}

// TestCGvsGAIN3Statistical reproduces the headline result of Table IV in a
// laptop-sized form: averaged over random instances and budget levels, CG's
// MED is substantially better than GAIN3's under the experiment
// distribution of gen.Instance.
func TestCGvsGAIN3Statistical(t *testing.T) {
	rng := rand.New(rand.NewSource(2013))
	var cgSum, g3Sum float64
	wins, losses := 0, 0
	for trial := 0; trial < 10; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 20, E: 80, N: 5})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		for lvl := 1; lvl <= 10; lvl++ {
			b := cmin + float64(lvl)/10*(cmax-cmin)
			cg, err := Run(CriticalGreedy(), wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			g3, err := Run(&GAIN{Variant: 3}, wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			cgSum += cg.MED
			g3Sum += g3.MED
			switch {
			case cg.MED < g3.MED-1e-9:
				wins++
			case cg.MED > g3.MED+1e-9:
				losses++
			}
		}
	}
	if math.IsNaN(cgSum) || math.IsNaN(g3Sum) {
		t.Fatal("NaN MED")
	}
	if cgSum > g3Sum {
		t.Fatalf("CG average MED %v worse than GAIN3 %v", cgSum/100, g3Sum/100)
	}
	if wins <= losses {
		t.Fatalf("CG wins %d vs losses %d across 100 runs", wins, losses)
	}
	t.Logf("CG avg %.2f vs GAIN3 avg %.2f (wins %d, losses %d)", cgSum/100, g3Sum/100, wins, losses)
}
