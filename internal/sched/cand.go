package sched

import (
	"math"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// candMode selects the ranking a candidate table maintains. The first two
// mirror Criterion for the Greedy family (GAIN3 shares candMaxRatio — its
// selection rule is identical); candWRF and candLoss carry the weight
// orders of Gain3WRF and LOSS1.
type candMode int

const (
	candMaxTime candMode = iota
	candMaxRatio
	candWRF
	candLoss
)

// activeSet selects which modules are eligible candidates when the table
// is queried: everything, only modules on the current critical path, or
// only modules not yet reassigned (the once-per-task / once-per-round
// disciplines of GAIN3 and Gain3WRF).
type activeSet int

const (
	actAll activeSet = iota
	actCritical
	actUnmoved
)

// candEnt is one lazy-deletion heap entry: the module it stands for, the
// generation of the per-module cache it was pushed from, and a copy of the
// ranking key at push time. Keys are embedded — never read back from the
// cache — so re-evaluating a module can never corrupt the ordering of
// entries already in the heap; the stale entry is simply dropped when its
// generation no longer matches.
type candEnt struct {
	key1, key2 float64
	mod        int32
	gen        uint32
}

// candTab maintains, per schedulable module, the best (type, gain) upgrade
// under the current schedule and leftover budget, plus a lazy-deletion
// max-heap over those winners. The invariants:
//
//   - gen[i] counts evaluations of module i; a heap entry is valid iff its
//     gen matches. Every evaluation bumps gen, so stale entries die on pop.
//   - eval[i] is the leftover budget the cached winner was computed under.
//     If the current leftover budget exceeds it, options skipped as
//     unaffordable may have become viable and the cache must be recomputed
//     (popBest does this for the top; refreshGrown for the whole pool).
//     If the budget shrank, the cached winner is still the best whenever it
//     remains affordable — the feasible set only lost members, all of which
//     already lost to the winner — and is recomputed on pop otherwise.
//   - candLoss weights are budget-independent, so both checks are skipped.
//
// Ties between equally-ranked modules break toward the smaller position in
// the engine's module order (mpos), reproducing the first-wins incumbent
// rule of the flat scans this replaces.
//
// medcc:scratch
type candTab struct {
	mode candMode
	e    *engine

	mpos []int32 // module id -> position in e.mods; -1 = not schedulable

	bj   []int32   // best type per module; -1 = no candidate
	bdt  []float64 // dt (candMaxTime/candMaxRatio), wt (candWRF), wgt (candLoss)
	bdc  []float64 // cost increase; cost saved for candLoss
	eval []float64 // leftover budget at evaluation time
	gen  []uint32

	heap []candEnt
}

// start binds the table to an engine for one scheduling run, resetting all
// caches to unevaluated.
//
// medcc:allocfree — grow is the cold capacity path; steady-state calls
// only clear and refill existing slices.
func (c *candTab) start(e *engine, mode candMode) {
	c.e, c.mode = e, mode
	nm := e.w.NumModules()
	if cap(c.bj) < nm {
		c.grow(nm)
	}
	c.bj = c.bj[:nm]
	c.bdt = c.bdt[:nm]
	c.bdc = c.bdc[:nm]
	c.eval = c.eval[:nm]
	c.gen = c.gen[:nm]
	c.mpos = c.mpos[:nm]
	for i := range c.gen {
		c.gen[i] = 0
		c.mpos[i] = -1
	}
	for p, i := range e.mods {
		c.mpos[i] = int32(p)
	}
	c.heap = c.heap[:0]
}

// grow allocates the per-module arrays for a new high-water module count.
//
// medcc:coldpath
func (c *candTab) grow(nm int) {
	c.bj = make([]int32, nm)
	c.bdt = make([]float64, nm)
	c.bdc = make([]float64, nm)
	c.eval = make([]float64, nm)
	c.gen = make([]uint32, nm)
	c.mpos = make([]int32, nm)
}

// active reports whether module i is currently an eligible candidate.
func (c *candTab) active(i int, act activeSet) bool {
	switch act {
	case actCritical:
		return c.e.t.IsCritical(i)
	case actUnmoved:
		return !c.e.moved[i]
	default:
		return true
	}
}

// evalModule recomputes module i's best upgrade (or downgrade, for
// candLoss) under schedule s and leftover budget cextra, invalidating any
// heap entries pushed from the previous evaluation.
//
// candMaxTime/candMaxRatio walk the structure-of-arrays option table in
// ascending execution-time order and stop at the first row that is no
// longer an improvement — every later row is slower still. candWRF and
// candLoss keep the type-index scan order of the flat loops they replace,
// because their epsilon tie-breaks are pinned to it (Table VII replays the
// paper's published outputs column for column).
//
// medcc:allocfree
func (c *candTab) evalModule(i int, s workflow.Schedule, cextra float64) {
	c.gen[i]++
	c.bj[i] = -1
	c.eval[i] = cextra
	e := c.e
	m := e.m
	si := s[i]
	switch c.mode {
	case candWRF:
		tei, cei := m.TE[i], m.CE[i]
		told, cold := tei[si], cei[si]
		bj := -1
		var bw, bdc float64
		for _, j := range e.opts(i) {
			if j == si {
				continue
			}
			tnew := tei[j]
			dc := cei[j] - cold
			if told-tnew <= dag.Eps || dc > cextra+costEps {
				continue
			}
			wt := math.Inf(1)
			if dc > costEps {
				wt = (told / tnew) / dc
			}
			if bj == -1 || wt > bw {
				bj, bw, bdc = j, wt, dc
			}
		}
		if bj >= 0 {
			c.bj[i], c.bdt[i], c.bdc[i] = int32(bj), bw, bdc
		}
	case candLoss:
		tei, cei := m.TE[i], m.CE[i]
		bj := -1
		var bw, bsave float64
		for _, j := range e.opts(i) {
			if j == si {
				continue
			}
			save := cei[si] - cei[j]
			if save <= costEps {
				continue
			}
			dt := tei[j] - tei[si]
			if dt < 0 {
				dt = 0 // cheaper and no slower: ideal downgrade
			}
			wgt := dt / save
			if bj == -1 || wgt < bw-dag.Eps ||
				(wgt <= bw+dag.Eps && save > bsave+costEps) {
				bj, bw, bsave = j, wgt, save
			}
		}
		if bj >= 0 {
			c.bj[i], c.bdt[i], c.bdc[i] = int32(bj), bw, bsave
		}
	default: // candMaxTime, candMaxRatio
		typ, te, ce := e.optTable(i)
		told, cold := m.TE[i][si], m.CE[i][si]
		bj := -1
		var bdt, bdc float64
		for k := 0; k < len(te); k++ {
			dt := told - te[k]
			if dt <= dag.Eps {
				break // te is ascending: nothing further improves
			}
			dc := ce[k] - cold
			if dc > cextra+costEps {
				continue // unaffordable
			}
			if bj == -1 || upgradeBetter(c.mode == candMaxRatio, dt, dc, bdt, bdc) {
				bj, bdt, bdc = int(typ[k]), dt, dc
			}
		}
		if bj >= 0 {
			c.bj[i], c.bdt[i], c.bdc[i] = int32(bj), bdt, bdc
		}
	}
}

// ensure refreshes module i's cache when it is unevaluated or stale for
// the current leftover budget (grown past the evaluation stamp, or cached
// winner no longer affordable).
//
// medcc:allocfree
func (c *candTab) ensure(i int, s workflow.Schedule, cextra float64) {
	if c.gen[i] == 0 ||
		(c.mode != candLoss &&
			(cextra > c.eval[i] || (c.bj[i] >= 0 && c.bdc[i] > cextra+costEps))) {
		c.evalModule(i, s, cextra)
	}
}

// push adds a heap entry for module i's current cached winner. Callers
// must have checked bj[i] >= 0. Duplicate live entries for the same module
// are harmless: accepting one bumps the generation and orphans the rest.
//
// medcc:allocfree — the append stays within capacity once the heap has
// grown to its high-water mark.
func (c *candTab) push(i int) {
	c.heap = append(c.heap, candEnt{
		key1: c.bdt[i], key2: c.bdc[i],
		mod: int32(i), gen: c.gen[i],
	})
	c.siftUp(len(c.heap) - 1)
}

// pushEnsure refreshes module i's cache as needed and pushes it when it
// has a candidate.
//
// medcc:allocfree
func (c *candTab) pushEnsure(i int, s workflow.Schedule, cextra float64) {
	c.ensure(i, s, cextra)
	if c.bj[i] >= 0 {
		c.push(i)
	}
}

// rebuild discards the heap and refills it from every active module,
// reusing caches that are still valid for the current leftover budget.
// This is the full-reset path: the initial build, a budget-level change in
// a sweep, and the critical-set reset after a makespan change all land
// here.
//
// medcc:allocfree
func (c *candTab) rebuild(s workflow.Schedule, cextra float64, act activeSet) {
	c.heap = c.heap[:0]
	for _, i := range c.e.mods {
		if !c.active(i, act) {
			continue
		}
		c.ensure(i, s, cextra)
		if c.bj[i] >= 0 {
			c.heap = append(c.heap, candEnt{
				key1: c.bdt[i], key2: c.bdc[i],
				mod: int32(i), gen: c.gen[i],
			})
		}
	}
	for k := len(c.heap)/2 - 1; k >= 0; k-- {
		c.siftDown(k)
	}
}

// refreshGrown re-evaluates every active module whose cache was computed
// under a smaller leftover budget than cextra. Lazy validation on pop is
// not enough after the budget grows: a buried entry's true rank may have
// strengthened past the top's, so each stale cache gets a fresh entry (the
// old one dies by generation).
//
// medcc:allocfree
func (c *candTab) refreshGrown(s workflow.Schedule, cextra float64, act activeSet) {
	if c.mode == candLoss {
		return
	}
	for _, i := range c.e.mods {
		if !c.active(i, act) || cextra <= c.eval[i] {
			continue
		}
		c.evalModule(i, s, cextra)
		if c.bj[i] >= 0 {
			c.push(i)
		}
	}
}

// popBest pops entries until one survives validation and returns its
// module, type, and cost delta. Entries are dropped when their generation
// is stale, their module is no longer active, or the module has no
// candidate; an entry whose cache is stale for the current budget is
// re-evaluated and re-pushed before the next pop.
//
// medcc:allocfree
func (c *candTab) popBest(s workflow.Schedule, cextra float64, act activeSet) (mod, typ int, dc float64, ok bool) {
	for len(c.heap) > 0 {
		top := c.heap[0]
		i := int(top.mod)
		if top.gen != c.gen[i] || !c.active(i, act) || c.bj[i] < 0 {
			c.pop()
			continue
		}
		if c.mode != candLoss &&
			(cextra > c.eval[i] || c.bdc[i] > cextra+costEps) {
			c.pop()
			c.evalModule(i, s, cextra)
			if c.bj[i] >= 0 {
				c.push(i)
			}
			continue
		}
		c.pop()
		return i, int(c.bj[i]), c.bdc[i], true
	}
	return -1, -1, 0, false
}

// before reports whether entry a should pop ahead of entry b: a strictly
// preferred key first, then the earlier module in the engine's module
// order, replicating the incumbent rule of a flat first-wins scan (prefer
// is asymmetric in every mode, so exactly one branch decides).
func (c *candTab) before(a, b candEnt) bool {
	if c.prefer(a, b) {
		return true
	}
	if c.prefer(b, a) {
		return false
	}
	return c.mpos[a.mod] < c.mpos[b.mod]
}

// prefer reports whether entry a's key strictly beats entry b's under the
// table's mode, mirroring the selection rules of the flat scans: Greedy's
// better() for the two Criterion modes, Gain3WRF's strict weight compare,
// and LOSS's min-weight / max-saving bands.
func (c *candTab) prefer(a, b candEnt) bool {
	switch c.mode {
	case candWRF:
		return a.key1 > b.key1
	case candLoss:
		return a.key1 < b.key1-dag.Eps ||
			(a.key1 <= b.key1+dag.Eps && a.key2 > b.key2+costEps)
	default:
		return upgradeBetter(c.mode == candMaxRatio, a.key1, a.key2, b.key1, b.key2)
	}
}

// upgradeBetter reports whether the candidate (dt, dc) beats the incumbent
// (bestDT, bestDC): the GainWeight ratio order when maxRatio is set, the
// paper's max-time-decrease / min-cost-increase order otherwise. This is
// the shared core of Greedy.better and the candidate-heap comparisons.
//
// medcc:floateq-exact — ratios may be +Inf (free upgrades); exact
// inequality merely detects distinct ranks before the epsilon tie-breaks.
func upgradeBetter(maxRatio bool, dt, dc, bestDT, bestDC float64) bool {
	if maxRatio {
		r, br := ratio(dt, dc), ratio(bestDT, bestDC)
		if r != br {
			return r > br
		}
		return dt > bestDT+dag.Eps
	}
	if dt > bestDT+dag.Eps {
		return true
	}
	if dt < bestDT-dag.Eps {
		return false
	}
	return dc < bestDC-costEps
}

func (c *candTab) siftUp(k int) {
	h := c.heap
	for k > 0 {
		p := (k - 1) / 2
		if !c.before(h[k], h[p]) {
			return
		}
		h[k], h[p] = h[p], h[k]
		k = p
	}
}

func (c *candTab) siftDown(k int) {
	h := c.heap
	n := len(h)
	for {
		l := 2*k + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && c.before(h[r], h[l]) {
			best = r
		}
		if !c.before(h[best], h[k]) {
			return
		}
		h[k], h[best] = h[best], h[k]
		k = best
	}
}

func (c *candTab) pop() {
	n := len(c.heap) - 1
	c.heap[0] = c.heap[n]
	c.heap = c.heap[:n]
	if n > 0 {
		c.siftDown(0)
	}
}
