package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"syscall"
	"testing"
	"time"
)

func TestNamedPaths(t *testing.T) {
	np := namedPaths{}
	if err := np.Set("prod=cat.json"); err != nil {
		t.Fatal(err)
	}
	if np["prod"] != "cat.json" {
		t.Fatalf("np = %v", np)
	}
	for _, bad := range []string{"noequals", "=path", "name=", "prod=again.json"} {
		if err := np.Set(bad); err == nil {
			t.Errorf("Set(%q) succeeded", bad)
		}
	}
}

func TestRunRejectsArgs(t *testing.T) {
	if err := run([]string{"positional"}, nil); err == nil {
		t.Fatal("run with positional arguments succeeded")
	}
}

func TestRunBadLibrary(t *testing.T) {
	if err := run([]string{"-catalog", "x=/nonexistent.json"}, nil); err == nil {
		t.Fatal("run with unreadable catalog succeeded")
	}
}

// TestRunServesAndShutsDown boots the daemon on an ephemeral port,
// schedules over HTTP, and stops it with SIGTERM.
func TestRunServesAndShutsDown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	resp, err := http.Post("http://"+addr+"/schedule?workflow=example&catalog=paper&budget_fraction=0.5",
		"application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Makespan float64        `json:"makespan"`
		Schedule []int          `json:"schedule"`
		Extra    map[string]any `json:"-"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d, err %v", resp.StatusCode, err)
	}
	if body.Makespan <= 0 || len(body.Schedule) == 0 {
		t.Fatalf("implausible response: %+v", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}
