// Command medcc-serve runs the scheduling service: a long-lived daemon
// accepting workflow + catalog + budget requests over HTTP and
// returning the computed schedule, makespan, and cost (optionally with
// a simulated trace). Request bodies may be a JSON envelope, a binary
// workflow container, or empty with library refs in the query string;
// see internal/serve for the API.
//
// Usage:
//
//	medcc-serve -addr :8080
//	medcc-serve -workers 8 -queue 64 -batch 16 \
//	    -catalog prod=catalog.json -workflow montage=montage.json
//	medcc-serve -cache-mem 67108864 -cache-levels 65
//
// Loaded libraries are served as versioned immutable snapshots; POST
// /reload re-reads every -catalog/-workflow source without dropping
// in-flight requests. Named (workflow, catalog, algorithm) triples are
// answered from a snapshot-scoped budget-staircase cache (GET /stats
// reports hit rates); -cache=false disables it, -cache-levels bounds
// each staircase's refined budget grid, and -cache-mem caps resident
// staircase bytes with LRU eviction.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"medcc/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "medcc-serve:", err)
		os.Exit(1)
	}
}

// namedPaths collects repeatable name=path flags.
type namedPaths map[string]string

func (np namedPaths) String() string { return "" }

func (np namedPaths) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if _, dup := np[name]; dup {
		return fmt.Errorf("duplicate name %q", name)
	}
	np[name] = path
	return nil
}

// run starts the daemon. A non-nil ready channel receives the bound
// listen address once the server accepts connections (used by tests to
// bind port 0).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("medcc-serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 0, "scheduling workers (default GOMAXPROCS)")
		queue       = fs.Int("queue", 0, "admission queue depth (default 4x workers; full queue replies 429)")
		batch       = fs.Int("batch", 0, "max jobs one worker drains per batch (default 16)")
		cache       = fs.Bool("cache", true, "serve named pairs from the snapshot-scoped staircase cache")
		cacheLevels = fs.Int("cache-levels", 0, "max budget levels per staircase after refinement (default 33)")
		cacheMem    = fs.Int64("cache-mem", 0, "resident staircase byte cap per snapshot, LRU-evicted (0 = unlimited)")
	)
	catalogs := namedPaths{}
	workflows := namedPaths{}
	fs.Var(catalogs, "catalog", "load a catalog JSON file as name=path (repeatable)")
	fs.Var(workflows, "workflow", "load a workflow file as name=path (repeatable; any ingest format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	s, err := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		MaxBatch:   *batch,
		Library:    serve.Library{Catalogs: catalogs, Workflows: workflows},
		Cache: serve.CacheConfig{
			Disable:   !*cache,
			MaxLevels: *cacheLevels,
			MaxBytes:  *cacheMem,
		},
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}

	snap := s.Snapshot()
	fmt.Fprintf(os.Stderr, "medcc-serve: listening on %s (%d workflows, %d catalogs, snapshot v%d)\n",
		ln.Addr(), len(snap.WorkflowNames()), len(snap.CatalogNames()), snap.Version)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "medcc-serve: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
