// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments                      # run everything at paper scale
//	experiments -only tableIV        # one experiment
//	experiments -quick               # reduced instance counts (CI-sized)
//	experiments -seed 42             # change the campaign seed
//	experiments -writecorpus dir     # freeze the campaign instance sets as binary corpora
//	experiments -corpus dir          # run tableIV/fig8-11/validation from frozen corpora
//
// Output is the same row/series layout the paper reports, printed to
// stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"medcc/internal/exper"
	"medcc/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only   = fs.String("only", "", "run a single experiment: tableII|fig6|tableIII|fig7|tableIV|fig8|fig9|fig10|fig11|tableVII|fig15|ablation|validation|provisioning|multicloud|clustering|adaptive|capacity|runtime")
		quick  = fs.Bool("quick", false, "reduced instance counts for a fast pass")
		seed   = fs.Int64("seed", exper.DefaultSeed, "campaign seed")
		csvDir = fs.String("csvdir", "", "also write fig6/tableIV/campaign/tableVII CSV files into this directory")
		optExt = fs.Bool("optext", false, "extend the optimality studies (tableIII, fig7) to the larger exact-baseline sizes (m=10..14)")
		corpus = fs.String("corpus", "", "run tableIV/fig8, fig9-11, and validation from the binary corpora in this directory (see -writecorpus)")
		wcorp  = fs.String("writecorpus", "", "write the campaign instance sets as binary corpora into this directory and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Paper-scale parameters, with a CI-sized -quick variant.
	tabIIIInst, fig7Inst, levels, campInst := 5, 100, 20, 10
	if *quick {
		tabIIIInst, fig7Inst, levels, campInst = 2, 10, 5, 2
	}

	if *wcorp != "" {
		return writeCorpora(out, *wcorp, *seed, campInst)
	}

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }
	ran := false

	writeCSV := func(name string, emit func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if want("tableII") {
		ran = true
		fmt.Fprintln(out, "== Table II: Critical-Greedy schedules of the numerical example ==")
		rows, err := exper.TableII()
		if err != nil {
			return err
		}
		if err := exper.RenderTableII(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig6") {
		ran = true
		fmt.Fprintln(out, "== Fig. 6: MED vs budget on the numerical example ==")
		pts, err := exper.Fig6()
		if err != nil {
			return err
		}
		if err := exper.RenderFig6(out, pts); err != nil {
			return err
		}
		if err := writeCSV("fig6.csv", func(w io.Writer) error { return exper.WriteFig6CSV(w, pts) }); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("tableIII") {
		ran = true
		fmt.Fprintln(out, "== Table III: Critical-Greedy vs optimal on small instances ==")
		rows, err := exper.TableIII(*seed, tabIIIInst)
		if err != nil {
			return err
		}
		if err := exper.RenderTableIII(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if *optExt {
			fmt.Fprintln(out, "== Table III (extended): Critical-Greedy vs optimal at m=10..14 ==")
			rows, err := exper.TableIIIAt(*seed, tabIIIInst, exper.ExtendedOptimalitySizes())
			if err != nil {
				return err
			}
			if err := exper.RenderTableIII(out, rows); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if want("fig7") {
		ran = true
		fmt.Fprintf(out, "== Fig. 7: %% of instances reaching the optimum (%d instances/size) ==\n", fig7Inst)
		rows, err := exper.Fig7(*seed, fig7Inst)
		if err != nil {
			return err
		}
		if err := exper.RenderFig7(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if *optExt {
			// The full extended sweep at m=14 multiplies the exact-solver
			// work by ~3^7 per instance over the paper's largest size, so
			// the Fig. 7 extension stops at m=12.
			ext := exper.ExtendedOptimalitySizes()[:2]
			fmt.Fprintf(out, "== Fig. 7 (extended): %% reaching the optimum at m=10..12 (%d instances/size) ==\n", fig7Inst)
			rows, err := exper.Fig7At(*seed, fig7Inst, ext)
			if err != nil {
				return err
			}
			if err := exper.RenderFig7(out, rows); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	var tableIV []exper.TableIVRow
	if want("tableIV") || want("fig8") {
		rows, err := tableIVRows(*corpus, *seed, levels)
		if err != nil {
			return err
		}
		tableIV = rows
	}
	if want("tableIV") {
		ran = true
		fmt.Fprintf(out, "== Table IV: average MED of CG and GAIN3 across %d budget levels ==\n", levels)
		if err := exper.RenderTableIV(out, tableIV); err != nil {
			return err
		}
		if err := writeCSV("tableIV.csv", func(w io.Writer) error { return exper.WriteTableIVCSV(w, tableIV) }); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig8") {
		ran = true
		fmt.Fprintln(out, "== Fig. 8: average MED improvement per problem size (Table IV data) ==")
		if err := exper.RenderFig8(out, tableIV); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig9") || want("fig10") || want("fig11") {
		ran = true
		fmt.Fprintf(out, "== Figs. 9-11 campaign: %d instances x %d budget levels per size ==\n", campInst, levels)
		cells, err := campaignCells(*corpus, *seed, campInst, levels)
		if err != nil {
			return err
		}
		if want("fig9") {
			fmt.Fprintln(out, "-- Fig. 9: average improvement per problem size --")
			if err := exper.RenderFig9(out, exper.Fig9(cells)); err != nil {
				return err
			}
		}
		if want("fig10") {
			fmt.Fprintln(out, "-- Fig. 10: average improvement per budget level --")
			if err := exper.RenderFig10(out, exper.Fig10(cells)); err != nil {
				return err
			}
		}
		if want("fig11") {
			fmt.Fprintln(out, "-- Fig. 11: improvement grid (size x budget level) --")
			if err := exper.RenderFig11(out, cells); err != nil {
				return err
			}
		}
		if err := writeCSV("campaign.csv", func(w io.Writer) error { return exper.WriteCampaignCSV(w, cells) }); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("tableVII") || want("fig15") {
		ran = true
		rows, err := exper.TableVII()
		if err != nil {
			return err
		}
		if want("tableVII") {
			fmt.Fprintln(out, "== Table VII: WRF workflow schedules on the simulated testbed ==")
			if err := exper.RenderTableVII(out, rows); err != nil {
				return err
			}
			fmt.Fprintln(out, "-- published rows (for comparison) --")
			if err := exper.RenderTableVII(out, exper.PublishedTableVII()); err != nil {
				return err
			}
		}
		if want("fig15") {
			fmt.Fprintln(out, "== Fig. 15: CG vs GAIN3 on the WRF workflow ==")
			if err := exper.RenderFig15(out, exper.Fig15(rows)); err != nil {
				return err
			}
		}
		if err := writeCSV("tableVII.csv", func(w io.Writer) error { return exper.WriteTableVIICSV(w, rows) }); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("ablation") {
		ran = true
		fmt.Fprintln(out, "== Ablation A1: candidate set x criterion grid ==")
		rows, err := exper.Ablation(*seed, gen.ProblemSize{M: 40, E: 434, N: 6}, campInst, levels)
		if err != nil {
			return err
		}
		if err := exper.RenderAblation(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("validation") {
		ran = true
		fmt.Fprintln(out, "== Validation A2: analytic model vs discrete-event simulator ==")
		rows, err := validationRows(*corpus, *seed)
		if err != nil {
			return err
		}
		if err := exper.RenderValidation(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("provisioning") {
		ran = true
		fmt.Fprintln(out, "== Extension A3: one-to-one mapping vs HEFT on fixed pools ==")
		rows, err := exper.Provisioning(8)
		if err != nil {
			return err
		}
		if err := exper.RenderProvisioning(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("multicloud") {
		ran = true
		fmt.Fprintln(out, "== Extension A4 (paper future work): multi-cloud scheduling ==")
		rows, err := exper.MultiCloud(10)
		if err != nil {
			return err
		}
		if err := exper.RenderMultiCloud(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("runtime") {
		ran = true
		fmt.Fprintln(out, "== Extension A8: scheduler wall time across problem sizes ==")
		reps := 20
		if *quick {
			reps = 2
		}
		algs := []string{"critical-greedy", "gain3", "gain3-wrf", "budget-dist"}
		rows, err := exper.RuntimeScaling(*seed, algs, reps)
		if err != nil {
			return err
		}
		if err := exper.RenderRuntime(out, algs, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("capacity") {
		ran = true
		fmt.Fprintln(out, "== Extension A7: testbed capacity vs queueing on a wide workflow ==")
		rows, err := exper.TestbedCapacity(*seed, 10, 6)
		if err != nil {
			return err
		}
		if err := exper.RenderCapacity(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("adaptive") {
		ran = true
		fmt.Fprintln(out, "== Extension A6: static vs adaptive scheduling under runtime noise ==")
		inst, seeds := 5, 10
		if *quick {
			inst, seeds = 2, 3
		}
		rows, err := exper.Adaptive(*seed, gen.ProblemSize{M: 20, E: 80, N: 5}, inst, seeds)
		if err != nil {
			return err
		}
		if err := exper.RenderAdaptive(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("clustering") {
		ran = true
		fmt.Fprintln(out, "== Extension A5: clustering preprocessing on the full WRF graph ==")
		rows, err := exper.Clustering()
		if err != nil {
			return err
		}
		if err := exper.RenderClustering(out, rows); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}

// validationSize is the A2 validation problem size (DESIGN.md), shared
// by the regenerate path, -writecorpus, and the corpus-backed run.
var validationSize = gen.ProblemSize{M: 30, E: 269, N: 6}

// validationInstances is the A2 validation instance count.
const validationInstances = 10

// Corpus file names inside a -corpus / -writecorpus directory.
const (
	tableIVCorpus    = "tableiv.medc"
	campaignCorpus   = "campaign.medc"
	validationCorpus = "validation.medc"
)

// writeCorpora freezes the Table IV, Figs. 9-11, and A2 validation
// instance sets as binary corpora. The campaign corpus is shaped by the
// instance count in effect (-quick changes it), so runs against it must
// use the same flag — the runners verify the shape and refuse otherwise.
func writeCorpora(out io.Writer, dir string, seed int64, campInst int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, emit func(io.Writer) (int, error)) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		n, err := emit(bw)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: %d instances\n", filepath.Join(dir, name), n)
		return nil
	}
	if err := write(tableIVCorpus, func(w io.Writer) (int, error) {
		return exper.WriteTableIVCorpus(w, seed, true)
	}); err != nil {
		return err
	}
	if err := write(campaignCorpus, func(w io.Writer) (int, error) {
		return exper.WriteCampaignCorpus(w, seed, campInst, true)
	}); err != nil {
		return err
	}
	return write(validationCorpus, func(w io.Writer) (int, error) {
		return exper.WriteValidationCorpus(w, seed, validationSize, validationInstances, true)
	})
}

// openCorpus opens one corpus file for streaming.
func openCorpus(dir, name string) (*os.File, *bufio.Reader, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, nil, err
	}
	return f, bufio.NewReaderSize(f, 1<<16), nil
}

func tableIVRows(corpusDir string, seed int64, levels int) ([]exper.TableIVRow, error) {
	if corpusDir == "" {
		return exper.TableIV(seed, levels)
	}
	f, br, err := openCorpus(corpusDir, tableIVCorpus)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exper.TableIVFromCorpus(br, levels)
}

func campaignCells(corpusDir string, seed int64, instances, levels int) ([]exper.CampaignCell, error) {
	if corpusDir == "" {
		return exper.Campaign(seed, instances, levels)
	}
	f, br, err := openCorpus(corpusDir, campaignCorpus)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exper.CampaignFromCorpus(br, instances, levels)
}

func validationRows(corpusDir string, seed int64) ([]exper.ValidationRow, error) {
	if corpusDir == "" {
		return exper.SimValidation(seed, validationSize, validationInstances)
	}
	f, br, err := openCorpus(corpusDir, validationCorpus)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exper.SimValidationFromCorpus(br, seed)
}
