package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunQuickAll exercises the whole experiment pipeline end to end at CI
// scale; the heavy paper-scale path is covered by cmd usage and benches.
func TestRunQuickAll(t *testing.T) {
	if err := run([]string{"-quick"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, only := range []string{
		"tableII", "fig6", "tableIII", "fig7", "fig8",
		"tableVII", "fig15", "provisioning", "multicloud", "clustering",
	} {
		if err := run([]string{"-quick", "-only", only}, io.Discard); err != nil {
			t.Fatalf("%s: %v", only, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "tableIX"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	for _, only := range []string{"fig6", "tableVII"} {
		if err := run([]string{"-quick", "-only", only, "-csvdir", dir}, io.Discard); err != nil {
			t.Fatalf("%s: %v", only, err)
		}
	}
	for _, f := range []string{"fig6.csv", "tableVII.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
	}
}
