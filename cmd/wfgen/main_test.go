package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/workflow"
)

func TestRunTopologies(t *testing.T) {
	dir := t.TempDir()
	for _, topo := range []string{"random", "pipeline", "forkjoin", "layered", "montage", "cybershake", "epigenomics"} {
		out := filepath.Join(dir, topo+".json")
		catOut := filepath.Join(dir, topo+"-cat.json")
		if err := run([]string{"-topology", topo, "-m", "8", "-e", "12", "-out", out, "-catout", catOut}); err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var w workflow.Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			t.Fatalf("%s produced invalid workflow: %v", topo, err)
		}
		catData, err := os.ReadFile(catOut)
		if err != nil {
			t.Fatal(err)
		}
		var cat cloud.Catalog
		if err := json.Unmarshal(catData, &cat); err != nil {
			t.Fatalf("%s produced invalid catalog: %v", topo, err)
		}
		if err := cat.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if err := run([]string{"-topology", "torus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestRunBadParams(t *testing.T) {
	if err := run([]string{"-m", "5", "-e", "999"}); err == nil {
		t.Fatal("impossible edge count accepted")
	}
}
