package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/encoding"
	"medcc/internal/workflow"
)

func TestRunTopologies(t *testing.T) {
	dir := t.TempDir()
	for _, topo := range []string{"random", "pipeline", "forkjoin", "layered", "montage", "cybershake", "epigenomics"} {
		out := filepath.Join(dir, topo+".json")
		catOut := filepath.Join(dir, topo+"-cat.json")
		if err := run([]string{"-topology", topo, "-m", "8", "-e", "12", "-out", out, "-catout", catOut}); err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var w workflow.Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			t.Fatalf("%s produced invalid workflow: %v", topo, err)
		}
		catData, err := os.ReadFile(catOut)
		if err != nil {
			t.Fatal(err)
		}
		var cat cloud.Catalog
		if err := json.Unmarshal(catData, &cat); err != nil {
			t.Fatalf("%s produced invalid catalog: %v", topo, err)
		}
		if err := cat.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunCorpusMode(t *testing.T) {
	dir := t.TempDir()

	// A converted input rides along as a positional argument.
	daxPath := filepath.Join(dir, "conv.xml")
	dax := `<?xml version="1.0"?>
<adag name="tiny">
  <job id="a" runtime="3"/>
  <job id="b" runtime="5"/>
  <child ref="b"><parent ref="a"/></child>
</adag>`
	if err := os.WriteFile(daxPath, []byte(dax), 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "corpus.medc")
	if err := run([]string{"-corpus", out, "-count", "25", "-seed", "3", "-compress", daxPath}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cr, err := encoding.NewCorpusReader(bufio.NewReader(f))
	if err != nil {
		t.Fatal(err)
	}
	wf := workflow.New()
	generated, converted := 0, 0
	for {
		cat, info, err := cr.Next(wf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", cr.NumRead(), err)
		}
		if err := cat.Validate(); err != nil {
			t.Fatalf("record %d catalog: %v", cr.NumRead(), err)
		}
		switch info.Kind {
		case encoding.KindGenerated:
			generated++
			// info carries the requested problem size; the generator adds
			// entry/exit modules on top of it.
			if wf.NumModules() < int(info.M) {
				t.Fatalf("record %d: %d modules for requested size %d", cr.NumRead(), wf.NumModules(), info.M)
			}
		case encoding.KindDAX:
			converted++
			if wf.NumModules() != 2 || wf.NumDependencies() != 1 {
				t.Fatalf("converted record: %d modules, %d edges", wf.NumModules(), wf.NumDependencies())
			}
		default:
			t.Fatalf("record %d: unexpected kind %d", cr.NumRead(), info.Kind)
		}
	}
	if generated != 25 || converted != 1 {
		t.Fatalf("%d generated + %d converted records", generated, converted)
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if err := run([]string{"-topology", "torus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestRunBadParams(t *testing.T) {
	if err := run([]string{"-m", "5", "-e", "999"}); err == nil {
		t.Fatal("impossible edge count accepted")
	}
}
