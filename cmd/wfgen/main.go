// Command wfgen emits random workflow instances and VM catalogs as JSON,
// in the format cmd/medcc consumes — or, in corpus mode, streams many
// instances into one compact binary corpus file (see internal/encoding).
//
// Usage:
//
//	wfgen -m 20 -e 80 -n 5 -seed 1 -out wf.json -catout cat.json
//	wfgen -topology montage -width 8 -out wf.json
//	wfgen -corpus corpus.medc -count 100000 -seed 1 [-compress] [converted.json converted.xml ...]
//
// Corpus mode generates -count instances cycling through the paper's 20
// problem sizes, then appends any positional-argument files (DAX XML or
// WfCommons JSON, format auto-detected) converted to workflow records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"medcc/internal/cloud"
	"medcc/internal/encoding"
	"medcc/internal/gen"
	"medcc/internal/ingest"
	"medcc/internal/workflow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wfgen", flag.ContinueOnError)
	var (
		m        = fs.Int("m", 20, "number of computing modules")
		e        = fs.Int("e", 80, "number of dependency edges")
		n        = fs.Int("n", 5, "number of VM types in the catalog")
		seed     = fs.Int64("seed", 1, "random seed")
		wlMin    = fs.Float64("wlmin", 100, "minimum module workload")
		wlMax    = fs.Float64("wlmax", 1000, "maximum module workload")
		topology = fs.String("topology", "random", "random | pipeline | forkjoin | layered | montage | cybershake | epigenomics")
		width    = fs.Int("width", 8, "width for non-random topologies")
		depth    = fs.Int("depth", 4, "depth for the layered topology")
		out      = fs.String("out", "", "workflow output file (default stdout)")
		catOut   = fs.String("catout", "", "catalog output file (omit to skip)")
		corpus   = fs.String("corpus", "", "write a binary instance corpus to this file instead of JSON")
		count    = fs.Int("count", 0, "corpus mode: number of generated instances (paper sizes, round-robin)")
		compress = fs.Bool("compress", false, "corpus mode: DEFLATE-compress chunks that shrink")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpus != "" {
		return runCorpus(*corpus, *count, *seed, *n, *compress, fs.Args())
	}
	rng := rand.New(rand.NewSource(*seed))

	var w *workflow.Workflow
	var err error
	switch *topology {
	case "random":
		w, err = gen.Random(rng, gen.Params{
			Modules: *m, Edges: *e,
			WorkloadMin: *wlMin, WorkloadMax: *wlMax,
			DataSizeMax: 10, AddEntryExit: true,
		})
		if err != nil {
			return err
		}
	case "pipeline":
		w = gen.Pipeline(rng, *m, *wlMin, *wlMax)
	case "forkjoin":
		w = gen.ForkJoin(rng, *width, *wlMin, *wlMax)
	case "layered":
		w = gen.Layered(rng, *depth, *width, *wlMin, *wlMax)
	case "montage":
		w = gen.MontageLike(rng, *width)
	case "cybershake":
		w = gen.CyberShakeLike(rng, *width)
	case "epigenomics":
		w = gen.EpigenomicsLike(rng, *width)
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}

	if err := writeJSON(*out, w); err != nil {
		return err
	}
	if stats, err := w.ComputeStats(); err == nil {
		fmt.Fprintf(os.Stderr, "generated %d modules (%d schedulable), %d edges, depth %d, width %d, CCR %.3f\n",
			stats.Modules, stats.Schedulable, stats.Dependencies, stats.Depth, stats.Width, stats.CCR)
	}
	if *catOut != "" {
		cat := cloud.DiminishingCatalog(*n, 3, 1, gen.SimulationGamma)
		if err := writeJSON(*catOut, cat); err != nil {
			return err
		}
	}
	return nil
}

// runCorpus streams count generated instances (plus any converted
// files) into one binary corpus. Generation cycles the paper's 20
// problem sizes with a pooled builder, so memory stays flat no matter
// how many instances are requested.
func runCorpus(path string, count int, seed int64, n int, compress bool, converts []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw, err := encoding.NewCorpusWriter(f, compress)
	if err != nil {
		return err
	}
	var b gen.Builder
	sizes := gen.PaperProblemSizes()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < count; i++ {
		size := sizes[i%len(sizes)]
		wf, cat, err := b.Instance(rng, size)
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		err = cw.WriteInstance(wf, cat, encoding.InstanceInfo{
			Seed: seed, Index: int64(i), Kind: encoding.KindGenerated,
			M: uint32(size.M), E: uint32(size.E), N: uint32(size.N),
		})
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
	}
	convCat := cloud.DiminishingCatalog(n, 3, 1, gen.SimulationGamma)
	for i, p := range converts {
		wf, _, format, err := ingest.File(p, ingest.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		kind := encoding.KindWfCommons
		if format == ingest.FormatDAX {
			kind = encoding.KindDAX
		}
		err = cw.WriteInstance(wf, convCat, encoding.InstanceInfo{
			Index: int64(i), Kind: kind,
			M: uint32(wf.NumModules()), E: uint32(wf.NumDependencies()), N: uint32(n),
		})
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "corpus %s: %d records (%d generated, %d converted), %d bytes\n",
		path, cw.Count(), count, len(converts), st.Size())
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
