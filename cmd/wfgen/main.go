// Command wfgen emits random workflow instances and VM catalogs as JSON,
// in the format cmd/medcc consumes.
//
// Usage:
//
//	wfgen -m 20 -e 80 -n 5 -seed 1 -out wf.json -catout cat.json
//	wfgen -topology montage -width 8 -out wf.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wfgen", flag.ContinueOnError)
	var (
		m        = fs.Int("m", 20, "number of computing modules")
		e        = fs.Int("e", 80, "number of dependency edges")
		n        = fs.Int("n", 5, "number of VM types in the catalog")
		seed     = fs.Int64("seed", 1, "random seed")
		wlMin    = fs.Float64("wlmin", 100, "minimum module workload")
		wlMax    = fs.Float64("wlmax", 1000, "maximum module workload")
		topology = fs.String("topology", "random", "random | pipeline | forkjoin | layered | montage | cybershake | epigenomics")
		width    = fs.Int("width", 8, "width for non-random topologies")
		depth    = fs.Int("depth", 4, "depth for the layered topology")
		out      = fs.String("out", "", "workflow output file (default stdout)")
		catOut   = fs.String("catout", "", "catalog output file (omit to skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	var w *workflow.Workflow
	var err error
	switch *topology {
	case "random":
		w, err = gen.Random(rng, gen.Params{
			Modules: *m, Edges: *e,
			WorkloadMin: *wlMin, WorkloadMax: *wlMax,
			DataSizeMax: 10, AddEntryExit: true,
		})
		if err != nil {
			return err
		}
	case "pipeline":
		w = gen.Pipeline(rng, *m, *wlMin, *wlMax)
	case "forkjoin":
		w = gen.ForkJoin(rng, *width, *wlMin, *wlMax)
	case "layered":
		w = gen.Layered(rng, *depth, *width, *wlMin, *wlMax)
	case "montage":
		w = gen.MontageLike(rng, *width)
	case "cybershake":
		w = gen.CyberShakeLike(rng, *width)
	case "epigenomics":
		w = gen.EpigenomicsLike(rng, *width)
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}

	if err := writeJSON(*out, w); err != nil {
		return err
	}
	if stats, err := w.ComputeStats(); err == nil {
		fmt.Fprintf(os.Stderr, "generated %d modules (%d schedulable), %d edges, depth %d, width %d, CCR %.3f\n",
			stats.Modules, stats.Schedulable, stats.Dependencies, stats.Depth, stats.Width, stats.CCR)
	}
	if *catOut != "" {
		cat := cloud.DiminishingCatalog(*n, 3, 1, gen.SimulationGamma)
		if err := writeJSON(*catOut, cat); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
