// Command medcc schedules a workflow described in a JSON file under a
// budget constraint and prints the resulting module-to-VM-type mapping,
// end-to-end delay, and cost.
//
// Usage:
//
//	medcc -workflow wf.json -catalog cat.json -budget 57 [-alg critical-greedy] [-billing hourly]
//	medcc -example -budget 57          # run the paper's §V-B example
//	medcc -list                        # list available algorithms
//
// The workflow JSON matches the workflow package's serialization:
//
//	{"modules": [{"name": "w1", "workload": 10}, ...],
//	 "edges":   [{"from": 0, "to": 1, "data_size": 2}, ...]}
//
// The catalog JSON is a list of VM types:
//
//	[{"name": "VT1", "power": 3, "rate": 1}, ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"medcc"
	"medcc/internal/ingest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "medcc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("medcc", flag.ContinueOnError)
	var (
		wfPath   = fs.String("workflow", "", "workflow JSON file")
		daxPath  = fs.String("dax", "", "Pegasus DAX XML workflow file (alternative to -workflow)")
		wfcPath  = fs.String("wfcommons", "", "WfCommons JSON workflow instance (alternative to -workflow)")
		refPower = fs.Float64("refpower", 1, "reference VM power reproducing DAX runtimes")
		catPath  = fs.String("catalog", "", "VM catalog JSON file")
		budget   = fs.Float64("budget", 0, "financial budget B")
		alg      = fs.String("alg", "critical-greedy", "scheduling algorithm")
		billing  = fs.String("billing", "hourly", "billing policy: hourly | second | exact")
		example  = fs.Bool("example", false, "use the paper's numerical example workflow")
		list     = fs.Bool("list", false, "list available algorithms and exit")
		showPlan = fs.Bool("reuse", false, "also print a VM reuse plan")
		gantt    = fs.Bool("gantt", false, "simulate the schedule and draw an ASCII Gantt chart")
		boot     = fs.Float64("boot", 0, "VM boot latency for the -gantt/-trace simulation")
		bw       = fs.Float64("bw", 0, "shared-storage bandwidth for the -gantt/-trace simulation (0 = free)")
		traceOut = fs.String("trace", "", "write a Chrome trace-event JSON of the simulated run to this file")
		dotOut   = fs.String("dot", "", "write a Graphviz rendering of the scheduled workflow to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(medcc.Algorithms(), "\n"))
		return nil
	}

	var w *medcc.Workflow
	var cat medcc.Catalog
	// All three workflow flags route through the shared streaming ingest
	// path (format auto-detected, no whole-file slurp); the dedicated
	// -dax/-wfcommons flags remain as documentation of intent.
	wfFile := *wfPath
	if wfFile == "" {
		wfFile = *daxPath
	}
	if wfFile == "" {
		wfFile = *wfcPath
	}
	switch {
	case *example:
		w, cat = medcc.PaperExample()
	case wfFile != "" && *catPath != "":
		parsed, _, _, err := ingest.File(wfFile, ingest.Options{ReferencePower: *refPower})
		if err != nil {
			return err
		}
		w = parsed
		if err := ingest.JSONFile(*catPath, &cat); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workflow (or -dax, -wfcommons) and -catalog, or -example (see -h)")
	}

	var policy medcc.BillingPolicy
	switch *billing {
	case "hourly":
		policy = medcc.HourlyBilling
	case "second":
		policy = medcc.PerSecondBilling
	case "exact":
		policy = medcc.ExactBilling
	default:
		return fmt.Errorf("unknown billing policy %q", *billing)
	}

	cmin, cmax, err := medcc.BudgetRange(w, cat, policy)
	if err != nil {
		return err
	}
	fmt.Printf("budget range: [Cmin=%.4g, Cmax=%.4g]\n", cmin, cmax)

	res, err := medcc.Solve(w, cat, policy, *budget, *alg)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\nbudget:    %.4g\nMED:       %.6g\ncost:      %.6g\n", *alg, *budget, res.MED, res.Cost)
	for i := 0; i < w.NumModules(); i++ {
		if res.Schedule[i] < 0 {
			fmt.Printf("  %-12s fixed (%.4g time units)\n", w.Module(i).Name, w.Module(i).FixedTime)
			continue
		}
		vt := cat[res.Schedule[i]]
		fmt.Printf("  %-12s -> %-8s time %.4g cost %.4g\n",
			w.Module(i).Name, vt.Name,
			res.Matrices.TE[i][res.Schedule[i]], res.Matrices.CE[i][res.Schedule[i]])
	}

	if *dotOut != "" {
		dot, err := w.ExportDOT(res.Schedule, cat, res.Matrices)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Printf("graph written to %s (render with: dot -Tsvg %s)\n", *dotOut, *dotOut)
	}

	var plan *medcc.ReusePlan
	if *showPlan || *gantt || *traceOut != "" {
		p, err := medcc.PlanReuse(w, res)
		if err != nil {
			return err
		}
		plan = p
	}
	if *showPlan {
		fmt.Printf("reuse plan: %d VM instance(s) for %d modules\n", plan.NumVMs(), len(w.Schedulable()))
		for v, mods := range plan.ModulesOf {
			names := make([]string, len(mods))
			for k, i := range mods {
				names[k] = w.Module(i).Name
			}
			fmt.Printf("  VM %d (%s): %s\n", v, cat[plan.TypeOf[v]].Name, strings.Join(names, " -> "))
		}
	}
	if *gantt || *traceOut != "" {
		sim, err := medcc.Simulate(w, res, plan, *boot, *bw, 0)
		if err != nil {
			return err
		}
		names := make([]string, w.NumModules())
		for i := range names {
			names[i] = w.Module(i).Name
		}
		if *gantt {
			fmt.Println()
			if err := sim.RenderGantt(os.Stdout, names, 64); err != nil {
				return err
			}
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := sim.WriteChromeTrace(f, names); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
		}
	}
	return nil
}
