package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunExample(t *testing.T) {
	if err := run([]string{"-example", "-budget", "57"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExampleWithReuseAndBillingVariants(t *testing.T) {
	for _, billing := range []string{"hourly", "second", "exact"} {
		if err := run([]string{"-example", "-budget", "60", "-billing", billing, "-reuse"}); err != nil {
			t.Fatalf("billing %s: %v", billing, err)
		}
	}
}

func TestRunDotExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "wf.dot")
	if err := run([]string{"-example", "-budget", "57", "-dot", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty dot file")
	}
}

func TestRunTraceExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-example", "-budget", "57", "-trace", out, "-boot", "0.5"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty trace file")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                           // no inputs
		{"-example", "-budget", "1"}, // infeasible
		{"-example", "-budget", "57", "-alg", "zzz"}, // unknown algorithm
		{"-example", "-budget", "57", "-billing", "weekly"},
		{"-workflow", "/nonexistent", "-catalog", "/nonexistent", "-budget", "1"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: error expected for %v", i, args)
		}
	}
}

func TestRunFromDAX(t *testing.T) {
	dir := t.TempDir()
	daxPath := filepath.Join(dir, "wf.xml")
	catPath := filepath.Join(dir, "cat.json")
	daxDoc := `<adag name="t">
	  <job id="a" name="stage1" runtime="30"><uses file="f" link="output" size="1000000"/></job>
	  <job id="b" name="stage2" runtime="60"><uses file="f" link="input" size="1000000"/></job>
	  <child ref="b"><parent ref="a"/></child>
	</adag>`
	cat := `[{"name":"VT1","power":1,"rate":1},{"name":"VT2","power":5,"rate":4}]`
	if err := os.WriteFile(daxPath, []byte(daxDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(catPath, []byte(cat), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dax", daxPath, "-catalog", catPath, "-budget", "1000", "-gantt"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dax", "/nonexistent.xml", "-catalog", catPath, "-budget", "10"}); err == nil {
		t.Fatal("missing DAX accepted")
	}
}

func TestRunFromWfCommons(t *testing.T) {
	dir := t.TempDir()
	wfcPath := filepath.Join(dir, "wf.json")
	catPath := filepath.Join(dir, "cat.json")
	doc := `{"workflow":{"jobs":[
	  {"name":"a","runtime":30,"files":[{"name":"f","link":"output","size":1000000}],"children":["b"]},
	  {"name":"b","runtime":60,"files":[{"name":"f","link":"input","size":1000000}]}
	]}}`
	cat := `[{"name":"VT1","power":1,"rate":1},{"name":"VT2","power":5,"rate":4}]`
	if err := os.WriteFile(wfcPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(catPath, []byte(cat), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-wfcommons", wfcPath, "-catalog", catPath, "-budget", "1000"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-wfcommons", "/nope.json", "-catalog", catPath, "-budget", "10"}); err == nil {
		t.Fatal("missing WfCommons file accepted")
	}
}

func TestRunFromJSONFiles(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "wf.json")
	catPath := filepath.Join(dir, "cat.json")
	wf := `{"modules":[{"name":"a","workload":30},{"name":"b","workload":60}],
	        "edges":[{"from":0,"to":1,"data_size":1}]}`
	cat := `[{"name":"VT1","power":3,"rate":1},{"name":"VT2","power":15,"rate":4}]`
	if err := os.WriteFile(wfPath, []byte(wf), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(catPath, []byte(cat), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-workflow", wfPath, "-catalog", catPath, "-budget", "100"}); err != nil {
		t.Fatal(err)
	}
	// Corrupt catalog must error.
	if err := os.WriteFile(catPath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-workflow", wfPath, "-catalog", catPath, "-budget", "100"}); err == nil {
		t.Fatal("corrupt catalog accepted")
	}
}
