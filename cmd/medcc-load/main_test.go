package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"medcc/internal/encoding"
	"medcc/internal/gen"
	"medcc/internal/serve"
)

// writeTestCorpus emits a small generated corpus like cmd/wfgen does.
func writeTestCorpus(t *testing.T, path string, count int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cw, err := encoding.NewCorpusWriter(f, false)
	if err != nil {
		t.Fatal(err)
	}
	var b gen.Builder
	sizes := gen.PaperProblemSizes()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < count; i++ {
		wf, cat, err := b.Instance(rng, sizes[i%len(sizes)])
		if err != nil {
			t.Fatal(err)
		}
		err = cw.WriteInstance(wf, cat, encoding.InstanceInfo{Seed: 7, Index: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRunAgainstServer(t *testing.T) {
	corpus := filepath.Join(t.TempDir(), "corpus.medc")
	writeTestCorpus(t, corpus, 6)

	s, err := serve.New(serve.Config{Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var out bytes.Buffer
	err = run([]string{"-url", ts.URL, "-corpus", corpus, "-n", "40", "-c", "4", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad report %q: %v", out.Bytes(), err)
	}
	if rep.Requests != 40 || rep.Bodies != 6 || rep.Clients != 4 {
		t.Errorf("report %+v", rep)
	}
	if rep.PerSecond <= 0 || rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Errorf("implausible latency stats: %+v", rep)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("run without -corpus succeeded")
	}
	if err := run([]string{"-corpus", "x.medc", "-n", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("run with -n 0 succeeded")
	}
	if err := run([]string{"-corpus", "/nonexistent.medc"}, &bytes.Buffer{}); err == nil {
		t.Error("run with missing corpus succeeded")
	}
}

func TestRunServerError(t *testing.T) {
	corpus := filepath.Join(t.TempDir(), "corpus.medc")
	writeTestCorpus(t, corpus, 2)
	s, err := serve.New(serve.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// budget_fraction 2 is rejected by the server: the run must fail.
	err = run([]string{"-url", ts.URL, "-corpus", corpus, "-n", "4", "-c", "1", "-budget", "2"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("run against rejecting server succeeded")
	}
}
