// Command medcc-load is a closed-loop load generator for medcc-serve:
// it drives the /schedule endpoint from -c concurrent clients until -n
// requests have succeeded, and reports throughput, the p50/p99/p999
// latency quantiles, and the server's cache hit ratio over the run
// (from GET /stats).
//
// Request bodies come from a binary workflow corpus (see cmd/wfgen
// -corpus), each instance re-encoded as a standalone container body
// (workflow + inline catalog), so the server needs no preloaded
// library. With -refs, bodies are skipped entirely: the generator
// fetches GET /library and sends query-only requests over the server's
// named (workflow, catalog) pairs — the traffic shape the staircase
// cache serves.
//
// Usage:
//
//	wfgen -corpus corpus.medc -count 64 -seed 1
//	medcc-load -url http://localhost:8080 -corpus corpus.medc -n 1000 -c 8
//	medcc-load -url http://localhost:8080 -refs -keys zipf -budget-dist grid -n 10000 -c 8
//
// -keys zipf skews which instance each request targets (repeat-heavy
// traffic); -budget-dist picks each request's budget fraction: "fixed"
// (always -budget), "grid" (random dyadic k/8 — bit-exact staircase
// hits), or "uniform" (random in [0,1] — mostly cache misses). 429
// backpressure responses are retried and counted, not treated as
// errors; any other non-200 status fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"medcc/internal/encoding"
	"medcc/internal/stats"
	"medcc/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "medcc-load:", err)
		os.Exit(1)
	}
}

// report is the run summary, printed as text or JSON.
type report struct {
	Requests   int     `json:"requests"`
	Clients    int     `json:"clients"`
	Bodies     int     `json:"bodies"`
	Seconds    float64 `json:"seconds"`
	PerSecond  float64 `json:"per_second"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	Retries429 int64   `json:"retries_429"`

	// Cache accounting over the run, from GET /stats deltas. StatsOK is
	// false (and the rest zero) against servers without the endpoint.
	StatsOK     bool    `json:"stats_ok"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRatio    float64 `json:"hit_ratio"`
}

// serverStats is the slice of the /stats response the generator reads.
type serverStats struct {
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// libraryListing is the slice of the /library response -refs reads.
type libraryListing struct {
	Catalogs  []string `json:"catalogs"`
	Workflows []string `json:"workflows"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medcc-load", flag.ContinueOnError)
	var (
		base       = fs.String("url", "http://localhost:8080", "base URL of a running medcc-serve")
		corpus     = fs.String("corpus", "", "binary workflow corpus to draw request bodies from")
		refs       = fs.Bool("refs", false, "query-only traffic over the server's /library pairs instead of corpus bodies")
		n          = fs.Int("n", 1000, "total requests")
		c          = fs.Int("c", 4, "concurrent closed-loop clients")
		maxBody    = fs.Int("instances", 64, "cap on distinct corpus instances to prebuild (cycled round-robin)")
		frac       = fs.Float64("budget", 0.5, "budget as a fraction of each instance's feasible range")
		budgetDist = fs.String("budget-dist", "fixed", "per-request budget fraction: fixed, grid (dyadic k/8), uniform")
		keys       = fs.String("keys", "uniform", "instance selection: uniform (round-robin) or zipf (repeat-heavy)")
		zipfS      = fs.Float64("zipf-s", 1.2, "zipf skew parameter s > 1 for -keys zipf")
		seed       = fs.Int64("seed", 1, "seed for -keys zipf and -budget-dist draws")
		alg        = fs.String("alg", "", "algorithm name (server default when empty)")
		simulate   = fs.Bool("simulate", false, "request simulated traces")
		asJSON     = fs.Bool("json", false, "print the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpus == "" && !*refs {
		return fmt.Errorf("either -corpus or -refs is required")
	}
	if *corpus != "" && *refs {
		return fmt.Errorf("-corpus and -refs are mutually exclusive")
	}
	if *n <= 0 || *c <= 0 || *maxBody <= 0 {
		return fmt.Errorf("-n, -c, and -instances must be positive")
	}
	switch *keys {
	case "uniform", "zipf":
	default:
		return fmt.Errorf("-keys must be uniform or zipf, got %q", *keys)
	}
	switch *budgetDist {
	case "fixed", "grid", "uniform":
	default:
		return fmt.Errorf("-budget-dist must be fixed, grid, or uniform, got %q", *budgetDist)
	}
	if *keys == "zipf" && *zipfS <= 1 {
		return fmt.Errorf("-zipf-s must be > 1, got %v", *zipfS)
	}

	client := &http.Client{Timeout: 60 * time.Second}

	// The request key space: prebuilt container bodies, or query-only
	// (workflow, catalog) ref pairs from the live server's library.
	var bodies [][]byte
	var pairs [][2]string
	var err error
	if *refs {
		if pairs, err = libraryPairs(client, *base); err != nil {
			return err
		}
	} else {
		if bodies, err = prebuild(*corpus, *maxBody); err != nil {
			return err
		}
	}
	nkeys := len(bodies) + len(pairs)

	extra := ""
	if *alg != "" {
		extra += "&algorithm=" + url.QueryEscape(*alg)
	}
	if *simulate {
		extra += "&simulate=true"
	}

	statsBefore, statsOK := fetchStats(client, *base)

	var (
		next    atomic.Int64 // request tickets; uniform keys use i%nkeys
		retries atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    = make([]float64, 0, *n) // seconds, one per success
		runErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
	}
	start := time.Now()
	for k := 0; k < *c; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(k)*1_000_003))
			var zipf *rand.Zipf
			if *keys == "zipf" {
				zipf = rand.NewZipf(rng, *zipfS, 1, uint64(nkeys-1))
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					return
				}
				key := int(i % int64(nkeys))
				if zipf != nil {
					key = int(zipf.Uint64())
				}
				f := *frac
				switch *budgetDist {
				case "grid":
					f = float64(rng.Intn(9)) / 8
				case "uniform":
					f = rng.Float64()
				}
				target := fmt.Sprintf("%s/schedule?budget_fraction=%g%s", *base, f, extra)
				var body []byte
				if *refs {
					p := pairs[key]
					target += "&workflow=" + url.QueryEscape(p[0]) + "&catalog=" + url.QueryEscape(p[1])
				} else {
					body = bodies[key]
				}
				for {
					t0 := time.Now()
					status, err := post(client, target, body)
					lat := time.Since(t0).Seconds()
					if err != nil {
						fail(err)
						return
					}
					if status == http.StatusTooManyRequests {
						retries.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					if status != http.StatusOK {
						fail(fmt.Errorf("request %d: status %d", i, status))
						return
					}
					mu.Lock()
					lats = append(lats, lat)
					mu.Unlock()
					break
				}
			}
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if runErr != nil {
		return runErr
	}

	sort.Float64s(lats)
	rep := report{
		Requests: len(lats), Clients: *c, Bodies: nkeys,
		Seconds: elapsed, PerSecond: float64(len(lats)) / elapsed,
		P50Ms:      stats.Percentile(lats, 50) * 1e3,
		P99Ms:      stats.Percentile(lats, 99) * 1e3,
		P999Ms:     stats.Percentile(lats, 99.9) * 1e3,
		Retries429: retries.Load(),
	}
	if statsOK {
		if after, ok := fetchStats(client, *base); ok {
			rep.StatsOK = true
			rep.CacheHits = after.CacheHits - statsBefore.CacheHits
			rep.CacheMisses = after.CacheMisses - statsBefore.CacheMisses
			if total := rep.CacheHits + rep.CacheMisses; total > 0 {
				rep.HitRatio = float64(rep.CacheHits) / float64(total)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		return enc.Encode(rep)
	}
	fmt.Fprintf(stdout, "%d requests, %d clients, %d bodies: %.0f schedules/sec (%.2fs total)\n",
		rep.Requests, rep.Clients, rep.Bodies, rep.PerSecond, rep.Seconds)
	fmt.Fprintf(stdout, "latency p50 %.3fms  p99 %.3fms  p999 %.3fms  (429 retries: %d)\n",
		rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.Retries429)
	if rep.StatsOK {
		fmt.Fprintf(stdout, "cache: %d hits / %d misses (hit ratio %.1f%%)\n",
			rep.CacheHits, rep.CacheMisses, rep.HitRatio*100)
	}
	return nil
}

func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// fetchStats reads the server's cache counters; ok is false when the
// endpoint is missing (older servers) or unreadable.
func fetchStats(client *http.Client, base string) (serverStats, bool) {
	var st serverStats
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}

// libraryPairs fetches GET /library and crosses every workflow with
// every catalog — the named pairs the snapshot has prebuilt.
func libraryPairs(client *http.Client, base string) ([][2]string, error) {
	resp, err := client.Get(base + "/library")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /library: status %d", resp.StatusCode)
	}
	var lib libraryListing
	if err := json.NewDecoder(resp.Body).Decode(&lib); err != nil {
		return nil, fmt.Errorf("GET /library: %w", err)
	}
	var pairs [][2]string
	for _, w := range lib.Workflows {
		for _, c := range lib.Catalogs {
			pairs = append(pairs, [2]string{w, c})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("server library lists no (workflow, catalog) pairs")
	}
	return pairs, nil
}

// prebuild reads up to max corpus instances and re-encodes each as a
// standalone single-record container (workflow + inline catalog):
// corpus-internal catalog refs are stream positional and mean nothing
// to the server, so every body carries its catalog.
func prebuild(path string, max int) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr, err := encoding.NewCorpusReader(f)
	if err != nil {
		return nil, err
	}
	var bodies [][]byte
	wf := workflow.New()
	var b encoding.RecordBuilder
	for len(bodies) < max {
		cat, _, err := cr.Next(wf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b.Begin()
		if err := b.Workflow(wf); err != nil {
			return nil, err
		}
		if err := b.Catalog(cat); err != nil {
			return nil, err
		}
		body, err := b.AppendRecord(encoding.AppendHeader(nil, 1), false)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		return nil, fmt.Errorf("corpus %s holds no instances", path)
	}
	return bodies, nil
}
