// Command medcc-load is a closed-loop load generator for medcc-serve:
// it prebuilds request bodies from a binary workflow corpus (see
// cmd/wfgen -corpus), drives the /schedule endpoint from -c concurrent
// clients until -n requests have succeeded, and reports throughput and
// the p50/p99/p999 latency quantiles.
//
// Usage:
//
//	wfgen -corpus corpus.medc -count 64 -seed 1
//	medcc-load -url http://localhost:8080 -corpus corpus.medc -n 1000 -c 8
//
// Each corpus instance is re-encoded as a standalone container body
// (workflow + inline catalog), so the server needs no preloaded
// library. 429 backpressure responses are retried and counted, not
// treated as errors; any other non-200 status fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"medcc/internal/encoding"
	"medcc/internal/stats"
	"medcc/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "medcc-load:", err)
		os.Exit(1)
	}
}

// report is the run summary, printed as text or JSON.
type report struct {
	Requests   int     `json:"requests"`
	Clients    int     `json:"clients"`
	Bodies     int     `json:"bodies"`
	Seconds    float64 `json:"seconds"`
	PerSecond  float64 `json:"per_second"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	Retries429 int64   `json:"retries_429"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medcc-load", flag.ContinueOnError)
	var (
		url      = fs.String("url", "http://localhost:8080", "base URL of a running medcc-serve")
		corpus   = fs.String("corpus", "", "binary workflow corpus to draw request bodies from (required)")
		n        = fs.Int("n", 1000, "total requests")
		c        = fs.Int("c", 4, "concurrent closed-loop clients")
		maxBody  = fs.Int("instances", 64, "cap on distinct corpus instances to prebuild (cycled round-robin)")
		frac     = fs.Float64("budget", 0.5, "budget as a fraction of each instance's feasible range")
		alg      = fs.String("alg", "", "algorithm name (server default when empty)")
		simulate = fs.Bool("simulate", false, "request simulated traces")
		asJSON   = fs.Bool("json", false, "print the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpus == "" {
		return fmt.Errorf("-corpus is required")
	}
	if *n <= 0 || *c <= 0 || *maxBody <= 0 {
		return fmt.Errorf("-n, -c, and -instances must be positive")
	}

	bodies, err := prebuild(*corpus, *maxBody)
	if err != nil {
		return err
	}
	target := fmt.Sprintf("%s/schedule?budget_fraction=%g", *url, *frac)
	if *alg != "" {
		target += "&algorithm=" + *alg
	}
	if *simulate {
		target += "&simulate=true"
	}

	var (
		next    atomic.Int64 // request tickets; body i%len(bodies)
		retries atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    = make([]float64, 0, *n) // seconds, one per success
		runErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
	}
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	for k := 0; k < *c; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					return
				}
				body := bodies[i%int64(len(bodies))]
				for {
					t0 := time.Now()
					status, err := post(client, target, body)
					lat := time.Since(t0).Seconds()
					if err != nil {
						fail(err)
						return
					}
					if status == http.StatusTooManyRequests {
						retries.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					if status != http.StatusOK {
						fail(fmt.Errorf("request %d: status %d", i, status))
						return
					}
					mu.Lock()
					lats = append(lats, lat)
					mu.Unlock()
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if runErr != nil {
		return runErr
	}

	sort.Float64s(lats)
	rep := report{
		Requests: len(lats), Clients: *c, Bodies: len(bodies),
		Seconds: elapsed, PerSecond: float64(len(lats)) / elapsed,
		P50Ms:      stats.Percentile(lats, 50) * 1e3,
		P99Ms:      stats.Percentile(lats, 99) * 1e3,
		P999Ms:     stats.Percentile(lats, 99.9) * 1e3,
		Retries429: retries.Load(),
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		return enc.Encode(rep)
	}
	fmt.Fprintf(stdout, "%d requests, %d clients, %d bodies: %.0f schedules/sec (%.2fs total)\n",
		rep.Requests, rep.Clients, rep.Bodies, rep.PerSecond, rep.Seconds)
	fmt.Fprintf(stdout, "latency p50 %.3fms  p99 %.3fms  p999 %.3fms  (429 retries: %d)\n",
		rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.Retries429)
	return nil
}

func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// prebuild reads up to max corpus instances and re-encodes each as a
// standalone single-record container (workflow + inline catalog):
// corpus-internal catalog refs are stream positional and mean nothing
// to the server, so every body carries its catalog.
func prebuild(path string, max int) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr, err := encoding.NewCorpusReader(f)
	if err != nil {
		return nil, err
	}
	var bodies [][]byte
	wf := workflow.New()
	var b encoding.RecordBuilder
	for len(bodies) < max {
		cat, _, err := cr.Next(wf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b.Begin()
		if err := b.Workflow(wf); err != nil {
			return nil, err
		}
		if err := b.Catalog(cat); err != nil {
			return nil, err
		}
		body, err := b.AppendRecord(encoding.AppendHeader(nil, 1), false)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		return nil, fmt.Errorf("corpus %s holds no instances", path)
	}
	return bodies, nil
}
