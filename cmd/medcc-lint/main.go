// medcc-lint runs the project's static-analysis suite (internal/analysis)
// over the whole module and reports invariant violations as
// file:line:col diagnostics, exiting non-zero when any survive
// suppression. It needs nothing beyond the standard library and the Go
// toolchain:
//
//	medcc-lint              # lint the module containing the cwd
//	medcc-lint -root DIR    # lint the module rooted at DIR
//	medcc-lint -analyzers allocfree,floateq
//	medcc-lint -list        # describe the analyzers
//	medcc-lint -json        # machine-readable diagnostics on stdout
//	medcc-lint -sarif PATH  # also write a SARIF 2.1.0 report to PATH
//
// See DESIGN.md §8 for what each analyzer enforces and README.md for
// the annotation conventions (medcc:allocfree, medcc:coldpath,
// medcc:scratch, medcc:floateq-exact, medcc:deterministic, medcc:daemon,
// medcc:onesnapshot, medcc:lint-ignore).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"medcc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("medcc-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	root := fs.String("root", "", "module root to lint (default: nearest go.mod above the cwd)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 report to this path (written even when clean)")
	verbose := fs.Bool("v", false, "report load/run timing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	dir := *root
	if dir == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
		dir, err = analysis.FindRoot(cwd)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}

	start := time.Now()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	mod, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	loaded := time.Now()

	diags := analysis.Run(mod, analyzers)
	if *verbose {
		fmt.Fprintf(errOut, "medcc-lint: %d packages loaded in %v, %d analyzers ran in %v\n",
			len(mod.Packages), loaded.Sub(start).Round(time.Millisecond),
			len(analyzers), time.Since(loaded).Round(time.Millisecond))
	}
	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
		err = analysis.WriteSARIF(f, dir, analyzers, diags)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}

	if *jsonOut {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		list := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			list = append(list, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(list); err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "medcc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
