// medcc-lint runs the project's static-analysis suite (internal/analysis)
// over the whole module and reports invariant violations as
// file:line:col diagnostics, exiting non-zero when any survive
// suppression. It needs nothing beyond the standard library and the Go
// toolchain:
//
//	medcc-lint              # lint the module containing the cwd
//	medcc-lint -root DIR    # lint the module rooted at DIR
//	medcc-lint -analyzers allocfree,floateq
//	medcc-lint -list        # describe the analyzers
//
// See DESIGN.md §8 for what each analyzer enforces and README.md for
// the annotation conventions (medcc:allocfree, medcc:coldpath,
// medcc:scratch, medcc:floateq-exact, medcc:lint-ignore).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"medcc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("medcc-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	root := fs.String("root", "", "module root to lint (default: nearest go.mod above the cwd)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	verbose := fs.Bool("v", false, "report load/run timing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	dir := *root
	if dir == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
		dir, err = analysis.FindRoot(cwd)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}

	start := time.Now()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	mod, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	loaded := time.Now()

	diags := analysis.Run(mod, analyzers)
	if *verbose {
		fmt.Fprintf(errOut, "medcc-lint: %d packages loaded in %v, %d analyzers ran in %v\n",
			len(mod.Packages), loaded.Sub(start).Round(time.Millisecond),
			len(analyzers), time.Since(loaded).Round(time.Millisecond))
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "medcc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
