package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"medcc/internal/analysis"
)

// capture runs run() with its output streams redirected to temp files
// and returns the exit code plus both streams' contents.
func capture(t *testing.T, args []string) (code int, out, errOut string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	outB, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errB, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(outB), string(errB)
}

func TestRunList(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"allocfree", "epochguard", "scratchescape", "floateq", "mapiter"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if code, _, _ := capture(t, []string{"-analyzers", "nosuch"}); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

func TestRunCleanModule(t *testing.T) {
	root, err := analysis.FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	code, out, errOut := capture(t, []string{"-root", root})
	if code != 0 {
		t.Fatalf("module lint exited %d:\n%s%s", code, out, errOut)
	}
}

// TestRunSeededViolation lints a throwaway module holding one float
// equality and expects the documented non-zero exit and diagnostic.
func TestRunSeededViolation(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module seeded\n",
		"bad.go": "package seeded\n\nfunc eq(a, b float64) bool { return a == b }\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	code, out, errOut := capture(t, []string{"-root", dir})
	if code != 1 {
		t.Fatalf("seeded violation exited %d, want 1:\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "[floateq]") {
		t.Errorf("diagnostic missing [floateq]:\n%s", out)
	}
	if !strings.Contains(errOut, "1 finding(s)") {
		t.Errorf("summary missing finding count:\n%s", errOut)
	}
}
