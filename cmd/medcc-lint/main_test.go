package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"medcc/internal/analysis"
)

// capture runs run() with its output streams redirected to temp files
// and returns the exit code plus both streams' contents.
func capture(t *testing.T, args []string) (code int, out, errOut string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	outB, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errB, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(outB), string(errB)
}

func TestRunList(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"allocfree", "epochguard", "scratchescape", "floateq", "mapiter",
		"atomics", "goroleak", "chanclose", "determinism", "errwrap",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if code, _, _ := capture(t, []string{"-analyzers", "nosuch"}); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

func TestRunCleanModule(t *testing.T) {
	root, err := analysis.FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	code, out, errOut := capture(t, []string{"-root", root})
	if code != 0 {
		t.Fatalf("module lint exited %d:\n%s%s", code, out, errOut)
	}
}

// seedViolationModule writes a throwaway module holding one float
// equality violation and returns its root.
func seedViolationModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module seeded\n",
		"bad.go": "package seeded\n\nfunc eq(a, b float64) bool { return a == b }\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunSeededViolation lints a throwaway module holding one float
// equality and expects the documented non-zero exit and diagnostic.
func TestRunSeededViolation(t *testing.T) {
	dir := seedViolationModule(t)
	code, out, errOut := capture(t, []string{"-root", dir})
	if code != 1 {
		t.Fatalf("seeded violation exited %d, want 1:\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "[floateq]") {
		t.Errorf("diagnostic missing [floateq]:\n%s", out)
	}
	if !strings.Contains(errOut, "1 finding(s)") {
		t.Errorf("summary missing finding count:\n%s", errOut)
	}
}

// TestRunBrokenModule expects a typed, non-zero failure (no panic) when
// the module under lint does not parse.
func TestRunBrokenModule(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module broken\n",
		"bad.go": "package broken\n\nfunc oops( {\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	code, _, errOut := capture(t, []string{"-root", dir})
	if code != 2 {
		t.Fatalf("broken module exited %d, want 2:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "parse") {
		t.Errorf("error output does not name the parse stage:\n%s", errOut)
	}
}

// TestRunJSON checks the machine-readable output against the seeded
// violation by unmarshalling it.
func TestRunJSON(t *testing.T) {
	dir := seedViolationModule(t)
	code, out, _ := capture(t, []string{"-root", dir, "-json"})
	if code != 1 {
		t.Fatalf("seeded violation exited %d, want 1", code)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Analyzer != "floateq" || diags[0].Line == 0 {
		t.Errorf("unexpected JSON diagnostics: %+v", diags)
	}
}

// TestRunSARIF checks the SARIF report: valid JSON, version 2.1.0, the
// full rule roster, and the seeded result with a root-relative URI.
func TestRunSARIF(t *testing.T) {
	dir := seedViolationModule(t)
	sarifFile := filepath.Join(t.TempDir(), "lint.sarif")
	code, _, errOut := capture(t, []string{"-root", dir, "-sarif", sarifFile})
	if code != 1 {
		t.Fatalf("seeded violation exited %d, want 1:\n%s", code, errOut)
	}
	data, err := os.ReadFile(sarifFile)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("SARIF header wrong: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "medcc-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, name := range []string{
		"allocfree", "epochguard", "scratchescape", "floateq", "mapiter",
		"atomics", "goroleak", "chanclose", "determinism", "errwrap", "staleignore",
	} {
		if !ruleIDs[name] {
			t.Errorf("SARIF rules missing %s", name)
		}
	}
	if len(run.Results) != 1 || run.Results[0].RuleID != "floateq" {
		t.Fatalf("unexpected SARIF results: %+v", run.Results)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "bad.go" || loc.Region.StartLine == 0 {
		t.Errorf("unexpected SARIF location: %+v", loc)
	}
}
