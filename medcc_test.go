package medcc

import (
	"errors"
	"math"
	"testing"
)

func TestSolveQuickstart(t *testing.T) {
	w := NewWorkflow()
	a := w.AddModule(Module{Name: "prepare", Workload: 40})
	b := w.AddModule(Module{Name: "solve", Workload: 120})
	if err := w.AddDependency(a, b, 2.5); err != nil {
		t.Fatal(err)
	}
	types := Catalog{
		{Name: "small", Power: 10, Rate: 1},
		{Name: "large", Power: 40, Rate: 5},
	}
	cmin, cmax, err := BudgetRange(w, types, HourlyBilling)
	if err != nil {
		t.Fatal(err)
	}
	if cmin >= cmax {
		t.Fatalf("degenerate budget range [%v,%v]", cmin, cmax)
	}
	res, err := Solve(w, types, HourlyBilling, cmax, "critical-greedy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > cmax+1e-9 || res.MED <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestSolvePaperExample(t *testing.T) {
	w, cat := PaperExample()
	res, err := Solve(w, cat, nil, 57, "critical-greedy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 57 {
		t.Fatalf("cost %v over budget", res.Cost)
	}
	if _, err := Solve(w, cat, nil, 40, "critical-greedy"); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("infeasible budget: err = %v", err)
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	w, cat := PaperExample()
	if _, err := Solve(w, cat, nil, 57, "does-not-exist"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmsListed(t *testing.T) {
	names := Algorithms()
	want := map[string]bool{"critical-greedy": false, "gain3": false, "gain3-wrf": false, "optimal": false, "loss1": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("algorithm %q missing from %v", n, names)
		}
	}
}

func TestSolveAllAlgorithmsOnExample(t *testing.T) {
	w, cat := PaperExample()
	for _, name := range Algorithms() {
		res, err := Solve(w, cat, nil, 56, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cost > 56+1e-9 {
			t.Fatalf("%s overspent: %v", name, res.Cost)
		}
	}
}

func TestPlanReuseAndSimulate(t *testing.T) {
	w, cat := PaperExample()
	res, err := Solve(w, cat, nil, 48, "critical-greedy")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanReuse(w, res)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumVMs() >= 6 {
		t.Fatalf("no reuse: %d VMs", plan.NumVMs())
	}
	simRes, err := Simulate(w, res, nil, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simRes.Makespan-res.MED) > 1e-9 || math.Abs(simRes.Cost-res.Cost) > 1e-9 {
		t.Fatalf("simulation disagrees with analytic: %+v vs %+v", simRes, res)
	}
	// Cold-start replay with reuse still completes and costs something.
	cold, err := Simulate(w, res, plan, 0.5, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Makespan <= simRes.Makespan {
		t.Fatal("boot/transfer delays had no effect")
	}
}

func TestNewPipelineFacade(t *testing.T) {
	p := NewPipeline([]float64{30, 60, 90})
	cat := Catalog{{Name: "a", Power: 30, Rate: 1}, {Name: "b", Power: 90, Rate: 4}}
	res, err := Solve(p, cat, PerSecondBilling, 1e9, "optimal")
	if err != nil {
		t.Fatal(err)
	}
	if res.MED <= 0 {
		t.Fatal("bad pipeline MED")
	}
}

func TestSolveDeadlineFacade(t *testing.T) {
	w, cat := PaperExample()
	// Fastest makespan is 4.6; least-cost makespan 17.33.
	if _, err := SolveDeadline(w, cat, nil, 3, false); !errors.Is(err, ErrDeadline) {
		t.Fatalf("tight deadline err = %v", err)
	}
	heur, err := SolveDeadline(w, cat, nil, 12, false)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveDeadline(w, cat, nil, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	if heur.MED > 12+1e-9 || exact.MED > 12+1e-9 {
		t.Fatal("deadline violated")
	}
	if exact.Cost > heur.Cost+1e-9 {
		t.Fatalf("exact dual (%v) costlier than heuristic (%v)", exact.Cost, heur.Cost)
	}
	// Duality spot-check: scheduling with the exact dual's cost as the
	// budget must achieve a makespan within the deadline.
	back, err := Solve(w, cat, nil, exact.Cost, "optimal")
	if err != nil {
		t.Fatal(err)
	}
	if back.MED > 12+1e-9 {
		t.Fatalf("duality violated: budget %v gives MED %v", exact.Cost, back.MED)
	}
}

func TestParetoFrontFacade(t *testing.T) {
	w, cat := PaperExample()
	front, err := ParetoFront(w, cat, nil, 17, "optimal")
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("front too small: %d points", len(front))
	}
	if front[0].Cost != 48 {
		t.Fatalf("front starts at %v, want Cmin 48", front[0].Cost)
	}
	for k := 1; k < len(front); k++ {
		if front[k].Cost <= front[k-1].Cost || front[k].MED >= front[k-1].MED {
			t.Fatal("front not strictly improving")
		}
	}
	if _, err := ParetoFront(w, cat, nil, 5, "nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunAdaptiveFacade(t *testing.T) {
	w, cat := PaperExample()
	out, err := RunAdaptive(AdaptiveConfig{
		Workflow: w, Catalog: cat, Billing: HourlyBilling,
		Budget: 57, Perturb: UniformNoise(0.1, 0.5), Seed: 3, Replan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Makespan <= 0 || out.Cost <= 0 {
		t.Fatalf("bad outcome %+v", out)
	}
	if err := w.ValidateSchedule(out.Final, len(cat)); err != nil {
		t.Fatal(err)
	}
}

func TestExactVsHourlyBilling(t *testing.T) {
	w, cat := PaperExample()
	_, hmax, err := BudgetRange(w, cat, HourlyBilling)
	if err != nil {
		t.Fatal(err)
	}
	_, emax, err := BudgetRange(w, cat, ExactBilling)
	if err != nil {
		t.Fatal(err)
	}
	if emax > hmax {
		t.Fatalf("exact Cmax %v above hourly %v", emax, hmax)
	}
}
