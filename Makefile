# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet lint test bench bench-check experiments experiments-quick fuzz cover clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (allocfree, epochguard, scratchescape,
# floateq, mapiter); see DESIGN.md §8 and `go run ./cmd/medcc-lint -list`.
lint:
	$(GO) run ./cmd/medcc-lint

test:
	$(GO) test ./...

# Full benchmark sweep, 5 repetitions per name, distilled into
# BENCH_8.json (see scripts/bench.sh for knobs).
bench:
	scripts/bench.sh

# Run a fresh sweep into an uncommitted candidate snapshot and fail when
# any benchmark present in both regressed against the committed
# BENCH_8.json baseline: more than 25% in ns/op (MAX_REGRESSION_PCT) or
# any allocs/op increase (MAX_ALLOC_DELTA, default 0, plus a 0.1%
# relative MAX_ALLOC_PCT headroom that only matters for concurrent
# benchmarks). Re-record the baseline with `make bench` when a change is
# intentional.
bench-check:
	scripts/bench.sh .bench.candidate.json
	scripts/bench_compare.sh BENCH_8.json .bench.candidate.json

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Short fuzz sessions over the input parsers, the binary container,
# and the serving API.
fuzz:
	$(GO) test -fuzz=FuzzWorkflowJSON -fuzztime=30s ./internal/workflow/
	$(GO) test -fuzz=FuzzGraphJSON -fuzztime=30s ./internal/dag/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/dax/
	$(GO) test -fuzz=FuzzDecodeCorpus -fuzztime=30s ./internal/encoding/
	$(GO) test -fuzz=FuzzDecodeRecord -fuzztime=30s ./internal/encoding/
	$(GO) test -fuzz=FuzzServeRequest -fuzztime=30s ./internal/serve/

# End-to-end smoke of the serving stack (race-built binaries).
serve-smoke:
	scripts/serve_smoke.sh

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
	rm -f .bench.candidate.json
