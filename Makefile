# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test bench experiments experiments-quick fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark sweep, 5 repetitions per name, distilled into
# BENCH_1.json (see scripts/bench.sh for knobs).
bench:
	scripts/bench.sh

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Short fuzz sessions over the input parsers.
fuzz:
	$(GO) test -fuzz=FuzzWorkflowJSON -fuzztime=30s ./internal/workflow/
	$(GO) test -fuzz=FuzzGraphJSON -fuzztime=30s ./internal/dag/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/dax/

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
