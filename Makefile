# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet lint test bench bench-check experiments experiments-quick fuzz cover clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (allocfree, epochguard, scratchescape,
# floateq, mapiter); see DESIGN.md §8 and `go run ./cmd/medcc-lint -list`.
lint:
	$(GO) run ./cmd/medcc-lint

test:
	$(GO) test ./...

# Full benchmark sweep, 5 repetitions per name, distilled into
# BENCH_3.json (see scripts/bench.sh for knobs).
bench:
	scripts/bench.sh

# Re-run the sweep into BENCH_3.json and fail when any benchmark present
# in both snapshots regressed more than 25% in ns/op against the committed
# BENCH_2.json baseline (threshold: MAX_REGRESSION_PCT).
bench-check:
	scripts/bench.sh BENCH_3.json
	scripts/bench_compare.sh BENCH_2.json BENCH_3.json

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Short fuzz sessions over the input parsers.
fuzz:
	$(GO) test -fuzz=FuzzWorkflowJSON -fuzztime=30s ./internal/workflow/
	$(GO) test -fuzz=FuzzGraphJSON -fuzztime=30s ./internal/dag/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/dax/

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
