#!/bin/sh
# Compare two benchmark JSON snapshots produced by scripts/bench.sh and
# fail on ns/op regressions.
#
# Usage: scripts/bench_compare.sh [baseline.json] [candidate.json]
#
# Environment:
#   MAX_REGRESSION_PCT  allowed ns/op increase per benchmark (default 25)
#
# Every benchmark present in both files is compared; the script exits
# non-zero when any of them is more than MAX_REGRESSION_PCT percent slower
# in the candidate. Benchmarks that exist in only one file are ignored, so
# adding or retiring benchmarks never breaks the check.
set -eu
cd "$(dirname "$0")/.."
BASE="${1:-BENCH_1.json}"
CAND="${2:-BENCH_2.json}"
MAX="${MAX_REGRESSION_PCT:-25}"

for f in "$BASE" "$CAND"; do
	[ -f "$f" ] || { echo "bench_compare: missing $f" >&2; exit 1; }
done

awk -v base="$BASE" -v cand="$CAND" -v max="$MAX" '
function parse(file, store,    line, name, ns) {
	while ((getline line < file) > 0) {
		if (line !~ /ns_per_op/) continue
		# Lines look like:
		#   "BenchmarkName": {"ns_per_op": 123, "allocs_per_op": 4},
		name = line
		sub(/^[ \t]*"/, "", name); sub(/".*/, "", name)
		ns = line
		sub(/.*"ns_per_op":[ \t]*/, "", ns); sub(/[,}].*/, "", ns)
		store[name] = ns + 0
	}
	close(file)
}
BEGIN {
	parse(base, b)
	parse(cand, c)
	n = 0; bad = 0
	for (name in b) {
		if (!(name in c)) continue
		n++
		delta = (c[name] - b[name]) / b[name] * 100
		printf "%-34s %12.0f -> %12.0f ns/op  %+7.1f%%\n", name, b[name], c[name], delta
		if (delta > max + 0) { bad++; worst[bad] = name }
	}
	if (n == 0) {
		print "bench_compare: no common benchmarks between " base " and " cand
		exit 1
	}
	if (bad > 0) {
		printf "FAIL: %d benchmark(s) regressed more than %s%% ns/op vs %s:\n", bad, max, base
		for (i = 1; i <= bad; i++) print "  " worst[i]
		exit 1
	}
	printf "OK: no benchmark regressed more than %s%% ns/op (%d compared)\n", max, n
}'
