#!/bin/sh
# Compare two benchmark JSON snapshots produced by scripts/bench.sh and
# fail on regressions.
#
# Usage: scripts/bench_compare.sh [baseline.json] [candidate.json]
#
# Environment:
#   MAX_REGRESSION_PCT  allowed ns/op increase per benchmark (default 25)
#   MAX_ALLOC_DELTA     allowed absolute allocs/op increase per benchmark
#                       (default 0: any new steady-state allocation is a
#                       failure for the single-goroutine benchmarks, whose
#                       allocation counts are deterministic)
#   MAX_ALLOC_PCT       additional relative allocs/op headroom, percent of
#                       the baseline (default 0.1). This rounds to zero
#                       extra slack for the small benchmarks but absorbs
#                       the few-allocs-in-hundreds-of-thousands scheduling
#                       jitter of concurrent ones like BenchmarkLintSelf,
#                       whose wave-parallel type-check allocates on
#                       goroutine stacks the scheduler sizes nondeterministically.
#
# Every benchmark present in both files is compared; the script exits
# non-zero when any of them is more than MAX_REGRESSION_PCT percent slower
# or gains more than MAX_ALLOC_DELTA + MAX_ALLOC_PCT% allocs/op in the
# candidate. Benchmarks that exist in only one file are ignored, so adding
# or retiring benchmarks never breaks the check.
set -eu
cd "$(dirname "$0")/.."
BASE="${1:-BENCH_8.json}"
CAND="${2:-.bench.candidate.json}"
MAX="${MAX_REGRESSION_PCT:-25}"
MAXALLOC="${MAX_ALLOC_DELTA:-0}"
MAXALLOCPCT="${MAX_ALLOC_PCT:-0.1}"

for f in "$BASE" "$CAND"; do
	[ -f "$f" ] || { echo "bench_compare: missing $f" >&2; exit 1; }
done

awk -v base="$BASE" -v cand="$CAND" -v max="$MAX" -v maxalloc="$MAXALLOC" -v maxallocpct="$MAXALLOCPCT" '
function parse(file, store, alloc,    line, name, ns, al) {
	while ((getline line < file) > 0) {
		if (line !~ /ns_per_op/) continue
		# Lines look like:
		#   "BenchmarkName": {"ns_per_op": 123, "allocs_per_op": 4},
		name = line
		sub(/^[ \t]*"/, "", name); sub(/".*/, "", name)
		ns = line
		sub(/.*"ns_per_op":[ \t]*/, "", ns); sub(/[,}].*/, "", ns)
		store[name] = ns + 0
		if (line ~ /"allocs_per_op":[ \t]*[0-9]/) {
			al = line
			sub(/.*"allocs_per_op":[ \t]*/, "", al); sub(/[,}].*/, "", al)
			alloc[name] = al + 0
		}
	}
	close(file)
}
BEGIN {
	parse(base, b, ba)
	parse(cand, c, ca)
	n = 0; bad = 0
	for (name in b) {
		if (!(name in c)) continue
		n++
		delta = (c[name] - b[name]) / b[name] * 100
		note = ""
		if ((name in ba) && (name in ca)) {
			dalloc = ca[name] - ba[name]
			note = sprintf("  allocs %d -> %d", ba[name], ca[name])
			if (dalloc > maxalloc + ba[name] * maxallocpct / 100) {
				bad++; worst[bad] = name " (allocs/op " ba[name] " -> " ca[name] ")"
			}
		}
		printf "%-34s %12.0f -> %12.0f ns/op  %+7.1f%%%s\n", name, b[name], c[name], delta, note
		if (delta > max + 0) { bad++; worst[bad] = name " (ns/op " sprintf("%+.1f", delta) "%)" }
	}
	if (n == 0) {
		print "bench_compare: no common benchmarks between " base " and " cand
		exit 1
	}
	if (bad > 0) {
		printf "FAIL: %d regression(s) vs %s (limits: ns/op +%s%%, allocs/op +%s+%s%%):\n", bad, base, max, maxalloc, maxallocpct
		for (i = 1; i <= bad; i++) print "  " worst[i]
		exit 1
	}
	printf "OK: no regressions (%d compared; limits: ns/op +%s%%, allocs/op +%s+%s%%)\n", n, max, maxalloc, maxallocpct
}'
