#!/bin/sh
# End-to-end smoke of the serving stack: build the daemon and the load
# generator (race-instrumented), generate a small corpus, boot
# medcc-serve on an ephemeral port, push requests through it with
# medcc-load, and require a clean report plus a clean shutdown. A second
# phase drives the staircase cache with query-only ref traffic on grid
# budgets, reloads the snapshot mid-run under that load, and requires
# cache hits from GET /stats afterwards.
#
# Usage: scripts/serve_smoke.sh
#
# Environment:
#   N     requests to push (default 100)
#   C     concurrent clients (default 4)
#   PORT  listen port (default 18080)
set -eu
cd "$(dirname "$0")/.."
N="${N:-100}"
C="${C:-4}"
PORT="${PORT:-18080}"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	[ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -race -o "$TMP/medcc-serve" ./cmd/medcc-serve
go build -race -o "$TMP/medcc-load" ./cmd/medcc-load
go build -o "$TMP/wfgen" ./cmd/wfgen

"$TMP/wfgen" -corpus "$TMP/corpus.medc" -count 16 -seed 1

"$TMP/medcc-serve" -addr "127.0.0.1:$PORT" -workers 2 2> "$TMP/serve.log" &
SERVE_PID=$!

ok=""
for _ in $(seq 1 50); do
	if curl -sf "http://127.0.0.1:$PORT/healthz" > /dev/null 2>&1; then
		ok=1
		break
	fi
	kill -0 "$SERVE_PID" 2>/dev/null || { cat "$TMP/serve.log" >&2; exit 1; }
	sleep 0.2
done
[ -n "$ok" ] || { echo "serve_smoke: server never became healthy" >&2; cat "$TMP/serve.log" >&2; exit 1; }

"$TMP/medcc-load" -url "http://127.0.0.1:$PORT" -corpus "$TMP/corpus.medc" -n "$N" -c "$C"

# A reload mid-life must succeed and keep serving.
curl -sf -X POST "http://127.0.0.1:$PORT/reload" > /dev/null
"$TMP/medcc-load" -url "http://127.0.0.1:$PORT" -corpus "$TMP/corpus.medc" -n 20 -c 2 > /dev/null

# Cached phase: query-only ref traffic on dyadic grid budgets exercises
# the staircase cache; a reload mid-run swaps the snapshot (and its
# cache) under concurrent cached load, which the race detector watches.
"$TMP/medcc-load" -url "http://127.0.0.1:$PORT" -refs -budget-dist grid -keys zipf \
	-n "$N" -c "$C" > "$TMP/cached1.out" &
LOAD_PID=$!
sleep 0.1
curl -sf -X POST "http://127.0.0.1:$PORT/reload" > /dev/null
wait "$LOAD_PID"
cat "$TMP/cached1.out"

# A warm follow-up run against the reloaded snapshot must mostly hit.
"$TMP/medcc-load" -url "http://127.0.0.1:$PORT" -refs -budget-dist grid \
	-n "$N" -c "$C" -json > "$TMP/cached2.json"
grep -q '"stats_ok":true' "$TMP/cached2.json" || {
	echo "serve_smoke: /stats missing from cached run" >&2; exit 1; }
grep -q '"cache_hits":0,' "$TMP/cached2.json" && {
	echo "serve_smoke: warm grid run produced no cache hits" >&2
	cat "$TMP/cached2.json" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/stats" > /dev/null

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
if grep -q "WARNING: DATA RACE" "$TMP/serve.log"; then
	cat "$TMP/serve.log" >&2
	echo "serve_smoke: data race detected" >&2
	exit 1
fi
echo "serve_smoke: OK ($N requests, $C clients, race-clean)"
