#!/bin/sh
# Run the root benchmark suite and distill it into a JSON snapshot.
#
# Usage: scripts/bench.sh [out.json]
#
# Environment:
#   COUNT   benchmark repetitions per name (default 5; best run is kept)
#   PATTERN -bench regex (default '.', everything)
#
# Output maps benchmark name -> {ns_per_op, allocs_per_op}, taking the
# fastest of the COUNT runs (the least noise-contaminated estimate) and the
# lowest allocation count (deterministic for single-goroutine benchmarks;
# concurrent ones jitter by a handful of allocs, and the minimum is the
# stable floor). Benchmarks that
# report latency quantiles via b.ReportMetric (p50-ns / p99-ns, e.g.
# BenchmarkServeThroughput) get p50_ns / p99_ns fields, again keeping
# the lowest of the COUNT runs.
set -eu
cd "$(dirname "$0")/.."
COUNT="${COUNT:-5}"
PATTERN="${PATTERN:-.}"
OUT="${1:-BENCH_8.json}"
TMP=".bench.raw.$$"
trap 'rm -f "$TMP"' EXIT INT TERM

go test -bench "$PATTERN" -benchmem -count "$COUNT" -run '^$' . | tee "$TMP"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""; p50 = ""; p99 = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
		if ($i == "p50-ns") p50 = $(i - 1)
		if ($i == "p99-ns") p99 = $(i - 1)
	}
	if (ns == "") next
	if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
	if (allocs != "" && (!(name in al) || allocs + 0 < al[name] + 0)) al[name] = allocs
	if (p50 != "" && (!(name in q50) || p50 + 0 < q50[name] + 0)) q50[name] = p50
	if (p99 != "" && (!(name in q99) || p99 + 0 < q99[name] + 0)) q99[name] = p99
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		a = (name in al) ? al[name] : "null"
		extra = ""
		if (name in q50) extra = extra ", \"p50_ns\": " q50[name]
		if (name in q99) extra = extra ", \"p99_ns\": " q99[name]
		printf "  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s%s}%s\n", \
			name, best[name], a, extra, (i < n ? "," : "")
	}
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT"
